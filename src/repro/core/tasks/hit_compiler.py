"""The HIT Compiler (Figure 1).

"The HIT Compiler generates the HTML form that a turker will fill out when
they accept the HIT (along with MTurk-specific information), and sends it to
MTurk."  This module turns a batch of :class:`~repro.core.tasks.task.Task`
objects (all sharing one :class:`~repro.core.tasks.spec.TaskSpec`) into:

* a :class:`~repro.crowd.hit.HITContent` understood by the simulated platform
  and its workers,
* the HTML form a real turker would see (also rendered by the demo's Task
  Completion Interface, Figure 3), and
* an extraction map used to pull each task's per-assignment answer back out
  of a submitted :class:`~repro.crowd.hit.Assignment`.
"""

from __future__ import annotations

import html as html_module
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.crowd.quality import GoldQuestion
from repro.core.tasks.spec import (
    ComparisonResponse,
    FormResponse,
    JoinColumnsResponse,
    RatingResponse,
    TaskSpec,
    YesNoResponse,
)
from repro.core.tasks.task import Task, TaskKind
from repro.crowd.hit import Assignment, FormField, HITContent, HITInterface, HITItem
from repro.errors import TaskCompilationError

__all__ = ["CompiledHIT", "HITCompiler"]


@dataclass
class CompiledHIT:
    """A HIT ready to post, plus the bookkeeping needed to interpret answers."""

    content: HITContent
    html: str
    tasks: tuple[Task, ...]
    #: item id -> task id, for per-item interfaces.
    item_to_task: dict[str, str] = field(default_factory=dict)
    #: JOIN_BLOCK only: item id -> ("left"|"right", index into the block lists).
    block_positions: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: Gold-standard probe items riding along: item id -> expected answer.
    #: Probes are invisible to answer extraction (no task maps to them); the
    #: Task Manager scores them against each assignment to update worker
    #: reputations.
    gold_items: dict[str, GoldQuestion] = field(default_factory=dict)

    def query_ids(self) -> tuple[str, ...]:
        """Distinct query ids contributing tasks, in first-contribution order.

        A HIT compiled under cross-query batching may carry tasks from
        several concurrent queries; answer extraction and cost attribution
        both route through each task's own ``query_id``.
        """
        seen: dict[str, None] = {}
        for task in self.tasks:
            if task.query_id:
                seen.setdefault(task.query_id, None)
        return tuple(seen)

    def extract_answers(self, assignment: Assignment) -> dict[str, Any]:
        """Return ``{task id: this worker's answer}`` for one assignment.

        For JOIN_BLOCK HITs the single task's answer is the list of matched
        ``(left index, right index)`` pairs reported by the worker.
        """
        interface = self.content.interface
        if interface is HITInterface.JOIN_COLUMNS:
            (task,) = self.tasks
            matches = assignment.answers.get("matches", [])
            pairs = []
            for left_id, right_id in matches:
                left = self.block_positions.get(left_id)
                right = self.block_positions.get(right_id)
                if left is None or right is None:
                    continue
                pairs.append((left[1], right[1]))
            return {task.task_id: sorted(set(pairs))}
        extracted: dict[str, Any] = {}
        for item_id, task_id in self.item_to_task.items():
            if item_id in assignment.answers:
                extracted[task_id] = assignment.answers[item_id]
        return extracted


_KIND_TO_INTERFACE = {
    TaskKind.GENERATE: HITInterface.QUESTION_FORM,
    TaskKind.FILTER: HITInterface.BINARY_CHOICE,
    TaskKind.JOIN_PAIR: HITInterface.JOIN_PAIRS,
    TaskKind.JOIN_BLOCK: HITInterface.JOIN_COLUMNS,
    TaskKind.COMPARE: HITInterface.COMPARISON,
    TaskKind.RATE: HITInterface.RATING,
}


class HITCompiler:
    """Compiles batches of tasks into HITs."""

    def compile(
        self,
        tasks: list[Task],
        *,
        gold: Sequence[GoldQuestion] = (),
        gold_position: int | None = None,
    ) -> CompiledHIT:
        """Compile a batch of same-spec, same-kind tasks into one HIT.

        ``gold`` — optional gold-standard probe questions mixed into the
        HIT's items (itemised interfaces only; JOIN_BLOCK HITs carry none).
        Workers cannot distinguish probes from real items; the Task Manager
        scores their probe answers against the known truth.
        ``gold_position`` — index among the real items where the probes are
        inserted (None appends).  Callers should vary it (seeded): a probe
        always parked at the end would grade fatigue-prone workers at their
        worst position and bias reputations downward.
        """
        if not tasks:
            raise TaskCompilationError("cannot compile an empty task batch")
        spec = tasks[0].spec
        kind = tasks[0].kind
        if any(t.spec.name != spec.name or t.kind is not kind for t in tasks):
            raise TaskCompilationError("a HIT batch must share one task spec and kind")
        if kind is TaskKind.JOIN_BLOCK and len(tasks) != 1:
            raise TaskCompilationError("JOIN_BLOCK tasks compile one block per HIT")

        if kind is TaskKind.JOIN_BLOCK:
            compiled = self._compile_join_block(tasks[0], spec)
        else:
            compiled = self._compile_itemised(tasks, spec, kind, gold, gold_position)
        return compiled

    # -- per-kind compilation ---------------------------------------------------

    def _compile_itemised(
        self,
        tasks: list[Task],
        spec: TaskSpec,
        kind: TaskKind,
        gold: Sequence[GoldQuestion] = (),
        gold_position: int | None = None,
    ) -> CompiledHIT:
        items: list[HITItem] = []
        item_to_task: dict[str, str] = {}
        for position, task in enumerate(tasks):
            item_id = f"item{position}"
            prompt = spec.render_text(*task.payload.get("args", ()))
            items.append(HITItem(item_id, prompt, payload=self._item_payload(task)))
            item_to_task[item_id] = task.task_id
        gold_items: dict[str, GoldQuestion] = {}
        insert_at = len(items) if gold_position is None else min(gold_position, len(items))
        for position, question in enumerate(gold):
            item_id = f"gold{position}"
            payload = dict(question.payload)
            payload.setdefault("_task", spec.name)
            items.insert(insert_at + position, HITItem(item_id, question.prompt, payload=payload))
            gold_items[item_id] = question

        fields: tuple[FormField, ...] = ()
        choices: tuple[str, ...] = ("yes", "no")
        rating_scale = (1, 7)
        response = spec.response
        if isinstance(response, FormResponse):
            fields = tuple(FormField(name, type_name) for name, type_name in response.fields)
        elif isinstance(response, YesNoResponse):
            choices = (response.yes_label, response.no_label)
        elif isinstance(response, RatingResponse):
            rating_scale = response.scale
        elif isinstance(response, ComparisonResponse):
            pass
        elif isinstance(response, JoinColumnsResponse) and kind is TaskKind.JOIN_PAIR:
            # Pairwise use of a JoinColumns task degenerates to yes/no questions.
            pass

        content = HITContent(
            interface=_KIND_TO_INTERFACE[kind],
            title=self._title(spec),
            instructions=self._instructions(spec),
            items=tuple(items),
            fields=fields,
            choices=choices,
            rating_scale=rating_scale,
        )
        return CompiledHIT(
            content=content,
            html=self.render_html(content),
            tasks=tuple(tasks),
            item_to_task=item_to_task,
            gold_items=gold_items,
        )

    def _compile_join_block(self, task: Task, spec: TaskSpec) -> CompiledHIT:
        response = spec.response
        if not isinstance(response, JoinColumnsResponse):
            raise TaskCompilationError(
                f"TASK {spec.name}: JOIN_BLOCK tasks need a JoinColumns response"
            )
        items: list[HITItem] = []
        block_positions: dict[str, tuple[str, int]] = {}
        for index, payload in enumerate(task.payload["left_items"]):
            item_id = f"L{index}"
            item_payload = {"_task": spec.name, **payload}
            items.append(
                HITItem(item_id, response.left_label, payload=item_payload, group="left")
            )
            block_positions[item_id] = ("left", index)
        for index, payload in enumerate(task.payload["right_items"]):
            item_id = f"R{index}"
            item_payload = {"_task": spec.name, **payload}
            items.append(
                HITItem(item_id, response.right_label, payload=item_payload, group="right")
            )
            block_positions[item_id] = ("right", index)
        content = HITContent(
            interface=HITInterface.JOIN_COLUMNS,
            title=self._title(spec),
            instructions=self._instructions(spec),
            items=tuple(items),
            left_label=response.left_label,
            right_label=response.right_label,
        )
        return CompiledHIT(
            content=content,
            html=self.render_html(content),
            tasks=(task,),
            block_positions=block_positions,
        )

    def _item_payload(self, task: Task) -> dict[str, Any]:
        payload = dict(task.payload)
        payload.pop("args", None)
        # Tag every item with the task name so oracles serving several task
        # types (one experiment often runs Query 1 and Query 2 side by side)
        # can dispatch on it.
        payload.setdefault("_task", task.spec.name)
        return payload

    def _title(self, spec: TaskSpec) -> str:
        return f"{spec.name} ({spec.task_type.value})"

    def _instructions(self, spec: TaskSpec) -> str:
        # Batched HITs show the un-substituted template as general guidance;
        # the per-item prompt carries the substituted question.
        return spec.text.replace("%s", "the item shown")

    # -- HTML rendering -----------------------------------------------------------

    def render_html(self, content: HITContent) -> str:
        """Render the HTML form a turker would fill out (Figure 3 style)."""
        parts = [
            "<form class='qurk-hit' method='post'>",
            f"  <h2>{html_module.escape(content.title)}</h2>",
            f"  <p class='instructions'>{html_module.escape(content.instructions)}</p>",
        ]
        renderer = {
            HITInterface.QUESTION_FORM: self._html_form,
            HITInterface.BINARY_CHOICE: self._html_choices,
            HITInterface.JOIN_PAIRS: self._html_choices,
            HITInterface.COMPARISON: self._html_comparison,
            HITInterface.RATING: self._html_rating,
            HITInterface.JOIN_COLUMNS: self._html_join_columns,
        }[content.interface]
        parts.extend(renderer(content))
        parts.append("  <input type='submit' value='Submit HIT'/>")
        parts.append("</form>")
        return "\n".join(parts)

    def _html_form(self, content: HITContent) -> list[str]:
        lines = []
        for item in content.items:
            lines.append(f"  <fieldset><legend>{html_module.escape(item.prompt)}</legend>")
            for form_field in content.fields:
                name = f"{item.item_id}.{form_field.name}"
                lines.append(
                    f"    <label>{html_module.escape(form_field.name)}: "
                    f"<input type='text' name='{html_module.escape(name)}'/></label>"
                )
            lines.append("  </fieldset>")
        return lines

    def _html_choices(self, content: HITContent) -> list[str]:
        yes, no = content.choices[0], content.choices[1]
        lines = []
        for item in content.items:
            lines.append(f"  <fieldset><legend>{html_module.escape(item.prompt)}</legend>")
            for value in (yes, no):
                lines.append(
                    f"    <label><input type='radio' name='{item.item_id}' "
                    f"value='{html_module.escape(value)}'/> {html_module.escape(value)}</label>"
                )
            lines.append("  </fieldset>")
        return lines

    def _html_comparison(self, content: HITContent) -> list[str]:
        lines = []
        for item in content.items:
            lines.append(f"  <fieldset><legend>{html_module.escape(item.prompt)}</legend>")
            for side in ("left", "right"):
                lines.append(
                    f"    <label><input type='radio' name='{item.item_id}' value='{side}'/> "
                    f"{side.title()}</label>"
                )
            lines.append("  </fieldset>")
        return lines

    def _html_rating(self, content: HITContent) -> list[str]:
        low, high = content.rating_scale
        lines = []
        for item in content.items:
            lines.append(f"  <fieldset><legend>{html_module.escape(item.prompt)}</legend>")
            options = "".join(f"<option value='{v}'>{v}</option>" for v in range(low, high + 1))
            lines.append(f"    <select name='{item.item_id}'>{options}</select>")
            lines.append("  </fieldset>")
        return lines

    def _html_join_columns(self, content: HITContent) -> list[str]:
        lines = ["  <table class='join-columns'><tr>"]
        lines.append(f"    <th>{html_module.escape(content.left_label or 'Left')}</th>")
        lines.append(f"    <th>{html_module.escape(content.right_label or 'Right')}</th>")
        lines.append("  </tr><tr><td>")
        for item in content.left_items:
            lines.append(
                f"    <div class='candidate' draggable='true' id='{item.item_id}'>"
                f"{html_module.escape(str(item.payload.get('label', item.item_id)))}</div>"
            )
        lines.append("  </td><td>")
        for item in content.right_items:
            lines.append(
                f"    <div class='drop-target' id='{item.item_id}'>"
                f"{html_module.escape(str(item.payload.get('label', item.item_id)))}</div>"
            )
        lines.append("  </td></tr></table>")
        return lines
