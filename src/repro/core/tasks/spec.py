"""Task specifications: the ``TASK`` definition language as Python objects.

Section 3 of the paper introduces a UDF language in which each crowd function
is described by a ``TASK`` block — its signature, a ``TaskType``, the question
``Text`` shown to turkers, and a ``Response`` describing the form the worker
fills in (Task 1 and Task 2 in the paper).  :class:`TaskSpec` is the parsed,
validated form of such a block; the SQL front end
(:mod:`repro.core.lang.task_parser`) produces these, and programmatic users
can construct them directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import TaskError

__all__ = [
    "TaskType",
    "ResponseSpec",
    "FormResponse",
    "YesNoResponse",
    "JoinColumnsResponse",
    "ComparisonResponse",
    "RatingResponse",
    "Parameter",
    "ReturnField",
    "TaskSpec",
]


class TaskType(enum.Enum):
    """The ``TaskType`` field of a TASK definition."""

    QUESTION = "Question"
    FILTER = "Filter"
    JOIN_PREDICATE = "JoinPredicate"
    RANK = "Rank"
    RATING = "Rating"

    @classmethod
    def from_string(cls, text: str) -> "TaskType":
        for member in cls:
            if member.value.lower() == text.lower():
                return member
        raise TaskError(f"unknown TaskType {text!r}")


class ResponseSpec:
    """Base class for the ``Response`` field of a TASK definition."""


@dataclass(frozen=True)
class FormResponse(ResponseSpec):
    """``Response: Form(("CEO", String), ("Phone", String))`` — free-text fields."""

    fields: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise TaskError("Form response needs at least one field")

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)


@dataclass(frozen=True)
class YesNoResponse(ResponseSpec):
    """A yes/no answer (filters and pairwise join predicates)."""

    yes_label: str = "Yes"
    no_label: str = "No"


@dataclass(frozen=True)
class JoinColumnsResponse(ResponseSpec):
    """``Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)``.

    The two-column matching interface of Figure 3.  ``left_per_hit`` and
    ``right_per_hit`` bound how many pictures appear in each column of one
    HIT ("The number of pictures in each column can change to facilitate
    multiple comparisons per HIT").
    """

    left_label: str
    right_label: str
    left_per_hit: int = 3
    right_per_hit: int = 3

    def __post_init__(self) -> None:
        if self.left_per_hit < 1 or self.right_per_hit < 1:
            raise TaskError("JoinColumns column sizes must be at least 1")


@dataclass(frozen=True)
class ComparisonResponse(ResponseSpec):
    """Pick the greater of two items (comparison-based crowd sort)."""

    left_label: str = "A"
    right_label: str = "B"


@dataclass(frozen=True)
class RatingResponse(ResponseSpec):
    """Rate one item on a numeric scale (rating-based crowd sort)."""

    scale: tuple[int, int] = (1, 7)

    def __post_init__(self) -> None:
        low, high = self.scale
        if low >= high:
            raise TaskError(f"rating scale must be increasing, got {self.scale}")


@dataclass(frozen=True)
class Parameter:
    """A typed parameter of the TASK signature (``String companyName``)."""

    name: str
    type_name: str = "String"


@dataclass(frozen=True)
class ReturnField:
    """A typed return field (``RETURNS (String CEO, String Phone)``)."""

    name: str
    type_name: str = "String"


_DEFAULT_COMBINERS = {
    TaskType.QUESTION: "FieldwiseMajority",
    TaskType.FILTER: "MajorityVote",
    TaskType.JOIN_PREDICATE: "MajorityVote",
    TaskType.RANK: "MajorityVote",
    TaskType.RATING: "MeanRating",
}


@dataclass(frozen=True)
class TaskSpec:
    """A fully described crowd UDF.

    Parameters beyond the paper's TASK fields (``price``, ``assignments``,
    ``batch_size``, ``combiner``) are the tuning knobs the Qurk optimizer
    adjusts; they have sensible defaults so a TASK block need not mention
    them.

    ``feature_extractor`` optionally maps a task payload to a numeric feature
    vector; when present, the Task Model (Section 2, "Task Model") can learn
    to answer this task and eventually replace the crowd.
    """

    name: str
    task_type: TaskType
    text: str
    response: ResponseSpec
    parameters: tuple[Parameter, ...] = ()
    returns: tuple[ReturnField, ...] = ()
    price: float = 0.01
    assignments: int = 3
    batch_size: int = 1
    combiner: str = ""
    feature_extractor: Callable[[dict], Sequence[float]] | None = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskError("a TASK needs a name")
        if self.price <= 0:
            raise TaskError(f"TASK {self.name}: price must be positive")
        if self.assignments < 1:
            raise TaskError(f"TASK {self.name}: assignments must be >= 1")
        if self.batch_size < 1:
            raise TaskError(f"TASK {self.name}: batch_size must be >= 1")
        if not self.combiner:
            object.__setattr__(self, "combiner", _DEFAULT_COMBINERS[self.task_type])
        self._check_response_matches_type()

    def _check_response_matches_type(self) -> None:
        expected: dict[TaskType, tuple[type, ...]] = {
            TaskType.QUESTION: (FormResponse,),
            TaskType.FILTER: (YesNoResponse,),
            TaskType.JOIN_PREDICATE: (YesNoResponse, JoinColumnsResponse),
            TaskType.RANK: (ComparisonResponse, RatingResponse),
            TaskType.RATING: (RatingResponse,),
        }
        if not isinstance(self.response, expected[self.task_type]):
            allowed = " or ".join(t.__name__ for t in expected[self.task_type])
            raise TaskError(
                f"TASK {self.name}: TaskType {self.task_type.value} requires a "
                f"{allowed} response, got {type(self.response).__name__}"
            )

    # -- helpers --------------------------------------------------------------

    def render_text(self, *args: object) -> str:
        """Substitute positional arguments into the ``Text`` template.

        The paper uses a ``%s`` substitution language; unmatched argument
        counts raise so misconfigured tasks fail loudly.
        """
        placeholders = self.text.count("%s")
        if placeholders != len(args):
            raise TaskError(
                f"TASK {self.name}: Text template expects {placeholders} argument(s), "
                f"got {len(args)}"
            )
        return self.text % args if placeholders else self.text

    @property
    def return_field_names(self) -> tuple[str, ...]:
        """Names of the RETURNS fields (empty for BOOL-returning tasks)."""
        return tuple(f.name for f in self.returns)

    @property
    def returns_bool(self) -> bool:
        """True when the task returns a single boolean (filters, join predicates)."""
        return not self.returns

    def with_overrides(
        self,
        *,
        price: float | None = None,
        assignments: int | None = None,
        batch_size: int | None = None,
        combiner: str | None = None,
    ) -> "TaskSpec":
        """Return a copy with optimizer-chosen tuning parameters applied."""
        return TaskSpec(
            name=self.name,
            task_type=self.task_type,
            text=self.text,
            response=self.response,
            parameters=self.parameters,
            returns=self.returns,
            price=price if price is not None else self.price,
            assignments=assignments if assignments is not None else self.assignments,
            batch_size=batch_size if batch_size is not None else self.batch_size,
            combiner=combiner if combiner is not None else self.combiner,
            feature_extractor=self.feature_extractor,
        )
