"""The Task Cache (Figure 1).

"We cache a given result to be used in several places (even possibly in
different queries)" — Section 3.  The cache maps ``(task name, cache key)`` to
the reduced answer of a previously completed task, so re-running ``findCEO``
on the same company (within a query, across operators, or across queries)
costs nothing.  The dashboard reports the money saved this way (Section 4.1),
so the cache tracks the spend it avoided — credited by the Task Manager with
what the *requesting* task would have paid, not what the stored answer
happened to cost.

Beyond the per-run dict, the cache is the front of a tiered answer store:

* a :class:`CachePolicy` adds TTL expiry (checked lazily on lookup against
  the injected clock — sim or wall) and reputation-weighted admission (an
  answer is only cached when the aggregate posterior accuracy of the workers
  who produced it clears ``min_confidence``);
* an attached durable tier (:class:`~repro.storage.answer_tier.DurableAnswerTier`)
  is notified of every admitted store, so answers survive restarts and are
  shared across engines;
* :meth:`export_since` / :meth:`import_entries` expose locally-stored entries
  for the cluster coordinator's answer directory, so a task answered on one
  shard becomes a cache hit on another.

All policy defaults are inert (no TTL, no admission threshold, no tier), so
an unconfigured cache behaves byte-identically to the plain dict it grew
from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["CacheEntry", "CachePolicy", "CacheStats", "TaskCache"]


@dataclass(frozen=True)
class CacheEntry:
    """A cached reduced answer along with what it originally cost to obtain."""

    reduced: Any
    original_cost: float
    stored_at: float
    #: Aggregate confidence in the stored answer (mean worker posterior for
    #: crowd answers, model confidence for escalated answers, 1.0 legacy).
    confidence: float = 1.0


@dataclass(frozen=True)
class CachePolicy:
    """Staleness and admission policy for the answer tier.

    ``ttl`` is in clock seconds (the engine's injected clock, simulated or
    wall); ``None`` means entries never expire.  ``min_confidence`` gates
    admission: answers whose aggregate worker confidence falls below it are
    not cached.  The defaults disable both checks, preserving the legacy
    cache behaviour bit-for-bit.
    """

    ttl: float | None = None
    min_confidence: float = 0.0

    def __post_init__(self) -> None:
        if self.ttl is not None and self.ttl < 0:
            raise ValueError(f"ttl must be >= 0 or None, got {self.ttl}")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError(f"min_confidence must be in [0, 1], got {self.min_confidence}")


@dataclass
class CacheStats:
    """Aggregate cache effectiveness counters (surfaced on the dashboard)."""

    hits: int = 0
    misses: int = 0
    entries: int = 0
    dollars_saved: float = 0.0
    #: Entries dropped on lookup because they outlived the policy TTL.
    expirations: int = 0
    #: Stores rejected because the answer's confidence missed the bar.
    admissions_rejected: int = 0
    #: Entries received from other shards via the coordinator directory.
    entries_imported: int = 0
    #: Hits served from an imported (answered-on-another-shard) entry.
    cross_shard_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TaskCache:
    """An in-memory cache of reduced task answers, keyed per task name."""

    def __init__(self, *, enabled: bool = True, policy: CachePolicy | None = None):
        self.enabled = enabled
        self.policy = policy if policy is not None else CachePolicy()
        self._entries: dict[tuple[str, Hashable], CacheEntry] = {}
        # Locally-stored keys in store order: the export cursor for the
        # cluster answer directory.  Imported entries are deliberately kept
        # out so shards only ever export answers they produced themselves.
        self._store_log: list[tuple[str, Hashable]] = []
        # Keys that arrived via import_entries — hits on them are the
        # cross-shard hits the cluster benchmark measures.
        self._imported: set[tuple[str, Hashable]] = set()
        self._tier = None
        self.stats = CacheStats()

    # -- the hot path ---------------------------------------------------------

    def lookup(
        self, task_name: str, cache_key: Hashable | None, *, now: float | None = None
    ) -> CacheEntry | None:
        """Return the cached entry for ``(task_name, cache_key)``, if any.

        ``now`` enables TTL enforcement: an entry older than the policy's
        ``ttl`` at lookup time is dropped and counted as an expiration plus
        a miss.  Savings are *not* credited here — the Task Manager knows
        what the requesting task would have spent and credits that via
        :meth:`credit_savings`.
        """
        if not self.enabled or cache_key is None:
            return None
        key = (task_name, cache_key)
        entry = self._entries.get(key)
        if entry is not None and self._expired(entry, now):
            del self._entries[key]
            self._imported.discard(key)
            self.stats.entries = len(self._entries)
            self.stats.expirations += 1
            entry = None
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if key in self._imported:
            self.stats.cross_shard_hits += 1
        return entry

    def _expired(self, entry: CacheEntry, now: float | None) -> bool:
        if self.policy.ttl is None or now is None:
            return False
        return (now - entry.stored_at) >= self.policy.ttl

    def credit_savings(self, amount: float) -> None:
        """Credit dollars a cache hit avoided spending (Section 4.1 line).

        Called by the Task Manager with ``assignment_cost(price) *
        assignments`` of the *requesting* task — the money actually not
        spent — mirroring the model-savings attribution.
        """
        self.stats.dollars_saved += amount

    def store(
        self,
        task_name: str,
        cache_key: Hashable | None,
        reduced: Any,
        *,
        cost: float,
        now: float,
        confidence: float = 1.0,
    ) -> bool:
        """Store a reduced answer; returns whether it was admitted.

        No-op for uncacheable tasks (no key).  ``confidence`` is the
        aggregate trust in the answer (mean worker posterior accuracy for
        crowd answers); stores below the policy's ``min_confidence`` are
        rejected so a low-reputation fluke cannot poison every future query.
        """
        if not self.enabled or cache_key is None:
            return False
        if confidence < self.policy.min_confidence:
            self.stats.admissions_rejected += 1
            return False
        key = (task_name, cache_key)
        if key not in self._entries:
            self.stats.entries += 1
        entry = CacheEntry(
            reduced=reduced, original_cost=cost, stored_at=now, confidence=confidence
        )
        self._entries[key] = entry
        # A local store supersedes an imported copy: the entry is now ours
        # to export, and hits on it are no longer cross-shard hits.
        self._imported.discard(key)
        self._store_log.append(key)
        if self._tier is not None:
            self._tier.record_store(task_name, cache_key, entry)
        return True

    def invalidate(self, task_name: str | None = None) -> int:
        """Drop entries for one task name (or everything); returns count dropped."""
        if task_name is None:
            dropped = len(self._entries)
            self._entries.clear()
            self._imported.clear()
        else:
            keys = [key for key in self._entries if key[0] == task_name]
            for key in keys:
                del self._entries[key]
                self._imported.discard(key)
            dropped = len(keys)
        self.stats.entries = len(self._entries)
        if self._tier is not None and dropped:
            self._tier.record_invalidate(task_name)
        return dropped

    # -- the durable tier ------------------------------------------------------

    def attach_tier(self, tier) -> None:
        """Mirror every admitted store (and invalidation) into ``tier``.

        The tier needs ``record_store(name, key, entry)`` and
        ``record_invalidate(name)`` — see
        :class:`~repro.storage.answer_tier.DurableAnswerTier`.
        """
        self._tier = tier

    def preload(self, task_name: str, cache_key: Hashable, entry: CacheEntry) -> bool:
        """Seed one entry from a durable tier without re-journaling it.

        Used when warming a fresh cache from disk: no store-log append (the
        entry is not this engine's to export), no tier notification (it came
        *from* the tier), no stats churn beyond the entry count.  Existing
        entries win — a live answer is never clobbered by an older stored one.
        """
        if not self.enabled:
            return False
        key = (task_name, cache_key)
        if key in self._entries:
            return False
        self._entries[key] = entry
        self.stats.entries = len(self._entries)
        return True

    # -- cross-shard sharing ---------------------------------------------------

    def export_since(self, cursor: int) -> tuple[int, list[dict]]:
        """Locally-stored entries past ``cursor``, as JSON-safe packed items.

        Returns ``(new_cursor, items)``; feeding ``new_cursor`` back yields
        only entries stored since.  Invalidated or superseded keys are
        skipped (their current entry is exported at its own log position).
        """
        from repro.storage.snapshot import pack_value

        items: list[dict] = []
        log = self._store_log
        for position in range(min(cursor, len(log)), len(log)):
            key = log[position]
            entry = self._entries.get(key)
            if entry is None:
                continue
            # A key re-stored later appears at multiple log positions; every
            # occurrence exports the *current* entry, which is harmless (the
            # import side is idempotent and local entries win).
            items.append(
                {
                    "name": key[0],
                    "key": pack_value(key[1]),
                    "reduced": pack_value(entry.reduced),
                    "original_cost": entry.original_cost,
                    "stored_at": entry.stored_at,
                    "confidence": entry.confidence,
                }
            )
        return len(log), items

    def import_entries(self, items: list[dict]) -> int:
        """Admit entries exported by another shard; returns how many landed.

        Local entries always win (the shard that produced an answer is its
        authority), imports never credit hit/savings counters, and imported
        keys are remembered so hits on them can be attributed cross-shard.
        """
        from repro.storage.snapshot import unpack_value

        if not self.enabled:
            return 0
        imported = 0
        for item in items:
            key = (item["name"], unpack_value(item["key"]))
            if key in self._entries:
                continue
            entry = CacheEntry(
                reduced=unpack_value(item["reduced"]),
                original_cost=item["original_cost"],
                stored_at=item["stored_at"],
                confidence=item.get("confidence", 1.0),
            )
            self._entries[key] = entry
            self._imported.add(key)
            imported += 1
            if self._tier is not None:
                self._tier.record_store(key[0], key[1], entry)
        if imported:
            self.stats.entries = len(self._entries)
            self.stats.entries_imported += imported
        return imported

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Entries + counters with exact-round-trip key/value packing.

        Cache keys and reduced answers contain tuples (JOIN_BLOCK
        reductions are lists of id pairs); plain JSON would lower them to
        lists and break dict-key equality on restore, so both sides go
        through the tagged :func:`~repro.storage.snapshot.pack_value`
        encoding — which *raises* on anything it cannot round-trip, since
        a silently-dropped entry would diverge recovery fingerprints.
        """
        from dataclasses import asdict

        from repro.storage.snapshot import pack_value

        return {
            "stats": asdict(self.stats),
            "entries": [
                {
                    "name": name,
                    "key": pack_value(cache_key),
                    "reduced": pack_value(entry.reduced),
                    "original_cost": entry.original_cost,
                    "stored_at": entry.stored_at,
                    "confidence": entry.confidence,
                }
                for (name, cache_key), entry in self._entries.items()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.storage.snapshot import unpack_value

        self.stats = CacheStats(**state["stats"])
        self._entries = {
            (item["name"], unpack_value(item["key"])): CacheEntry(
                reduced=unpack_value(item["reduced"]),
                original_cost=item["original_cost"],
                stored_at=item["stored_at"],
                confidence=item.get("confidence", 1.0),
            )
            for item in state["entries"]
        }
        # Restored entries are local again (insertion order approximates the
        # original store order; exact for snapshots without invalidations).
        self._store_log = list(self._entries)
        self._imported = set()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, Hashable]) -> bool:
        return key in self._entries
