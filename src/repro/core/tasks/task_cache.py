"""The Task Cache (Figure 1).

"We cache a given result to be used in several places (even possibly in
different queries)" — Section 3.  The cache maps ``(task name, cache key)`` to
the reduced answer of a previously completed task, so re-running ``findCEO``
on the same company (within a query, across operators, or across queries)
costs nothing.  The dashboard reports the money saved this way (Section 4.1),
so the cache tracks the spend it avoided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["CacheEntry", "CacheStats", "TaskCache"]


@dataclass(frozen=True)
class CacheEntry:
    """A cached reduced answer along with what it originally cost to obtain."""

    reduced: Any
    original_cost: float
    stored_at: float


@dataclass
class CacheStats:
    """Aggregate cache effectiveness counters (surfaced on the dashboard)."""

    hits: int = 0
    misses: int = 0
    entries: int = 0
    dollars_saved: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TaskCache:
    """An in-memory cache of reduced task answers, keyed per task name."""

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._entries: dict[tuple[str, Hashable], CacheEntry] = {}
        self.stats = CacheStats()

    def lookup(self, task_name: str, cache_key: Hashable | None) -> CacheEntry | None:
        """Return the cached entry for ``(task_name, cache_key)``, if any.

        A hit increments the savings counter by the entry's original cost,
        which is exactly the money the requester did not have to spend again.
        """
        if not self.enabled or cache_key is None:
            return None
        entry = self._entries.get((task_name, cache_key))
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.dollars_saved += entry.original_cost
        return entry

    def store(
        self,
        task_name: str,
        cache_key: Hashable | None,
        reduced: Any,
        *,
        cost: float,
        now: float,
    ) -> None:
        """Store a reduced answer; no-op for uncacheable tasks (no key)."""
        if not self.enabled or cache_key is None:
            return
        key = (task_name, cache_key)
        if key not in self._entries:
            self.stats.entries += 1
        self._entries[key] = CacheEntry(reduced=reduced, original_cost=cost, stored_at=now)

    def invalidate(self, task_name: str | None = None) -> int:
        """Drop entries for one task name (or everything); returns count dropped."""
        if task_name is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            keys = [key for key in self._entries if key[0] == task_name]
            for key in keys:
                del self._entries[key]
            dropped = len(keys)
        self.stats.entries = len(self._entries)
        return dropped

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Entries + counters with exact-round-trip key/value packing.

        Cache keys and reduced answers contain tuples (JOIN_BLOCK
        reductions are lists of id pairs); plain JSON would lower them to
        lists and break dict-key equality on restore, so both sides go
        through the tagged :func:`~repro.storage.snapshot.pack_value`
        encoding — which *raises* on anything it cannot round-trip, since
        a silently-dropped entry would diverge recovery fingerprints.
        """
        from dataclasses import asdict

        from repro.storage.snapshot import pack_value

        return {
            "stats": asdict(self.stats),
            "entries": [
                {
                    "name": name,
                    "key": pack_value(cache_key),
                    "reduced": pack_value(entry.reduced),
                    "original_cost": entry.original_cost,
                    "stored_at": entry.stored_at,
                }
                for (name, cache_key), entry in self._entries.items()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.storage.snapshot import unpack_value

        self.stats = CacheStats(**state["stats"])
        self._entries = {
            (item["name"], unpack_value(item["key"])): CacheEntry(
                reduced=unpack_value(item["reduced"]),
                original_cost=item["original_cost"],
                stored_at=item["stored_at"],
            )
            for item in state["entries"]
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, Hashable]) -> bool:
        return key in self._entries
