"""The Task Model (Figure 1): learning to replace the crowd.

"If Qurk is aware of a learning model for the task, it trains this model with
HIT results with the hope of eventually reducing monetary costs through
automation."  The dashboard (Section 4.1) reports the benefit gained from
"the use of classifiers in place of humans for various HITs".

A :class:`LearnedTaskModel` wraps an online binary classifier (logistic
regression trained by SGD, implemented with ``numpy``) for tasks whose spec
provides a ``feature_extractor``.  Crowd answers are used both as training
labels and — via a held-out window — to estimate the model's accuracy.  Only
once the estimated accuracy passes a confidence threshold does the Task
Manager let the model answer live tasks, and even then only predictions whose
probability is far enough from 0.5 are trusted; the rest still go to humans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.tasks.spec import TaskSpec
from repro.core.tasks.task import Task, TaskKind
from repro.errors import TaskError

__all__ = ["ModelStats", "TaskModel", "LearnedTaskModel", "TaskModelRegistry"]


@dataclass
class ModelStats:
    """Counters describing how a task model has been used (dashboard data)."""

    observations: int = 0
    predictions_served: int = 0
    predictions_declined: int = 0
    dollars_saved: float = 0.0
    holdout_correct: int = 0
    holdout_total: int = 0

    @property
    def holdout_accuracy(self) -> float:
        """Accuracy of the model on crowd-labelled holdout examples."""
        if not self.holdout_total:
            return 0.0
        return self.holdout_correct / self.holdout_total


class TaskModel:
    """Interface the Task Manager uses to consult a learned model."""

    def observe(self, task: Task, label: Any) -> None:
        """Learn from a crowd-produced (payload, reduced answer) example."""
        raise NotImplementedError

    def predict(self, task: Task) -> tuple[Any, float] | None:
        """Return ``(answer, confidence)`` or None when the model abstains."""
        raise NotImplementedError

    @property
    def is_trusted(self) -> bool:
        """Whether the model is allowed to answer live tasks."""
        raise NotImplementedError


class LearnedTaskModel(TaskModel):
    """Online logistic regression over spec-provided feature vectors.

    Parameters
    ----------
    spec:
        The task spec; must define ``feature_extractor`` and describe a
        boolean-answer task (filter or join predicate).
    min_observations:
        Training examples required before the model may be trusted.
    trust_accuracy:
        Required holdout accuracy (measured against crowd answers) before the
        model answers live tasks.
    confidence_threshold:
        Minimum prediction confidence (``|p - 0.5| * 2``) for the model to
        answer rather than abstain.
    learning_rate, l2:
        SGD hyper-parameters.
    """

    def __init__(
        self,
        spec: TaskSpec,
        *,
        min_observations: int = 30,
        trust_accuracy: float = 0.9,
        confidence_threshold: float = 0.8,
        learning_rate: float = 0.1,
        l2: float = 1e-4,
        holdout_every: int = 5,
    ) -> None:
        if spec.feature_extractor is None:
            raise TaskError(f"TASK {spec.name} has no feature extractor; cannot learn it")
        if not spec.returns_bool:
            raise TaskError("LearnedTaskModel only supports boolean-answer tasks")
        self.spec = spec
        self.min_observations = min_observations
        self.trust_accuracy = trust_accuracy
        self.confidence_threshold = confidence_threshold
        self.learning_rate = learning_rate
        self.l2 = l2
        self.holdout_every = holdout_every
        self.stats = ModelStats()
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._holdout_window: list[bool] = []

    # -- feature handling -------------------------------------------------------

    def _features(self, task: Task) -> np.ndarray | None:
        payload = self._feature_payload(task)
        if payload is None:
            return None
        raw = self.spec.feature_extractor(payload)
        if raw is None:
            return None
        vector = np.asarray(list(raw), dtype=float)
        if vector.ndim != 1 or vector.size == 0:
            return None
        return vector

    @staticmethod
    def _feature_payload(task: Task) -> dict | None:
        if task.kind in (TaskKind.FILTER, TaskKind.RATE):
            return task.payload
        if task.kind in (TaskKind.JOIN_PAIR, TaskKind.COMPARE):
            return task.payload
        return None

    # -- learning ----------------------------------------------------------------

    def observe(self, task: Task, label: Any) -> None:
        if not isinstance(label, bool):
            return
        features = self._features(task)
        if features is None:
            return
        if self._weights is None:
            self._weights = np.zeros(features.size)
        if self._weights.size != features.size:
            return
        # Before training on this example, use it as a holdout measurement of
        # the current model (prequential evaluation).
        if self.stats.observations and self.stats.observations % self.holdout_every == 0:
            probability = self._probability(features)
            predicted = probability >= 0.5
            self.stats.holdout_total += 1
            self.stats.holdout_correct += int(predicted == label)
        target = 1.0 if label else 0.0
        probability = self._probability(features)
        gradient = probability - target
        self._weights -= self.learning_rate * (gradient * features + self.l2 * self._weights)
        self._bias -= self.learning_rate * gradient
        self.stats.observations += 1

    def _probability(self, features: np.ndarray) -> float:
        if self._weights is None:
            return 0.5
        score = float(np.dot(self._weights, features) + self._bias)
        # Clamp to avoid overflow in exp for extreme scores.
        score = max(min(score, 30.0), -30.0)
        return 1.0 / (1.0 + math.exp(-score))

    # -- prediction ----------------------------------------------------------------

    @property
    def is_trusted(self) -> bool:
        return (
            self.stats.observations >= self.min_observations
            and self.stats.holdout_total >= 3
            and self.stats.holdout_accuracy >= self.trust_accuracy
        )

    def predict(self, task: Task) -> tuple[bool, float] | None:
        if not self.is_trusted:
            return None
        features = self._features(task)
        if features is None or self._weights is None or features.size != self._weights.size:
            return None
        probability = self._probability(features)
        confidence = abs(probability - 0.5) * 2.0
        if confidence < self.confidence_threshold:
            self.stats.predictions_declined += 1
            return None
        self.stats.predictions_served += 1
        return probability >= 0.5, confidence

    def record_savings(self, dollars: float) -> None:
        """Credit the money a crowd HIT would have cost (dashboard metric)."""
        self.stats.dollars_saved += dollars

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Learned parameters + usage counters for a snapshot.

        The hyper-parameters are not captured — they come from the spec
        registration the engine recipe re-runs on rebuild.
        """
        from dataclasses import asdict

        return {
            "weights": None if self._weights is None else self._weights.tolist(),
            "bias": self._bias,
            "stats": asdict(self.stats),
        }

    def load_state_dict(self, state: dict) -> None:
        weights = state["weights"]
        self._weights = None if weights is None else np.asarray(weights, dtype=float)
        self._bias = float(state["bias"])
        self.stats = ModelStats(**state["stats"])


class TaskModelRegistry:
    """Holds the task model (if any) for each task spec name."""

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._models: dict[str, TaskModel] = {}

    def register(self, spec_name: str, model: TaskModel) -> None:
        """Attach a model to a task name."""
        self._models[spec_name] = model

    def register_default(self, spec: TaskSpec, **kwargs) -> LearnedTaskModel | None:
        """Create a :class:`LearnedTaskModel` for ``spec`` when it is learnable."""
        if spec.feature_extractor is None or not spec.returns_bool:
            return None
        model = LearnedTaskModel(spec, **kwargs)
        self.register(spec.name, model)
        return model

    def model_for(self, spec_name: str) -> TaskModel | None:
        """The model registered for a task name, or None."""
        if not self.enabled:
            return None
        return self._models.get(spec_name)

    def models(self) -> dict[str, TaskModel]:
        """All registered models keyed by task name."""
        return dict(self._models)

    def total_savings(self) -> float:
        """Total dollars saved by all models (dashboard metric)."""
        total = 0.0
        for model in self._models.values():
            stats = getattr(model, "stats", None)
            if stats is not None:
                total += stats.dollars_saved
        return total

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Per-model learned state, for models that support snapshots.

        Models are *registered* by the engine recipe on rebuild; only
        their learned parameters travel through the snapshot.
        """
        return {
            name: model.state_dict()
            for name, model in self._models.items()
            if hasattr(model, "state_dict")
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.errors import RecoveryError

        for name, model_state in state.items():
            model = self._models.get(name)
            if model is None or not hasattr(model, "load_state_dict"):
                raise RecoveryError(
                    f"snapshot carries task-model state for {name!r} but the rebuilt "
                    "engine did not register that model"
                )
            model.load_state_dict(model_state)


