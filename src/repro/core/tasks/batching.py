"""Batching policies used by the Task Manager.

Section 2: "As an optimization, the manager can batch several tasks into a
single HIT.  The task manager can feed batches of tuples to a single operator
(e.g., collecting multiple tuples to sort)."  A batching policy decides how
many pending tasks of one group to put into each HIT and when a partially
filled batch should be flushed anyway (so the tail of a workload is not stuck
waiting for peers that will never arrive).

Groups are keyed by (task spec, kind) *across* queries: under the engine
scheduler, concurrent queries over the same crowd UDF feed one shared queue,
so a policy's batches — and the HITs they become — may mix tasks from several
queries.  Forced flushes happen only when no active query can make local
progress, which gives concurrent workloads the longest window to fill
batches before partial HITs are posted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tasks.task import Task
from repro.errors import TaskError

__all__ = ["BatchingPolicy", "FixedBatching", "NoBatching", "AdaptiveBatching"]


class BatchingPolicy:
    """Decides how pending tasks are grouped into HITs."""

    def batch_size(self, pending: int) -> int:
        """Number of tasks to place in the next HIT given ``pending`` queued tasks."""
        raise NotImplementedError

    def should_flush(self, pending: int, *, force: bool) -> bool:
        """Whether a HIT should be formed now."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description (shown on the dashboard)."""
        return type(self).__name__


@dataclass
class NoBatching(BatchingPolicy):
    """One task per HIT — the naive baseline the paper improves on."""

    def batch_size(self, pending: int) -> int:
        return 1

    def should_flush(self, pending: int, *, force: bool) -> bool:
        return pending >= 1

    def describe(self) -> str:
        return "no batching (1 task/HIT)"


@dataclass
class FixedBatching(BatchingPolicy):
    """Put up to ``size`` tasks into each HIT.

    Partially filled batches are only flushed when ``force`` is set (the
    operator has no more input) to avoid posting lots of undersized HITs.
    """

    size: int = 5

    def __post_init__(self) -> None:
        if self.size < 1:
            raise TaskError("batch size must be >= 1")

    def batch_size(self, pending: int) -> int:
        return min(self.size, max(pending, 1))

    def should_flush(self, pending: int, *, force: bool) -> bool:
        if pending <= 0:
            return False
        return pending >= self.size or force

    def describe(self) -> str:
        return f"fixed batching ({self.size} tasks/HIT)"


@dataclass
class AdaptiveBatching(BatchingPolicy):
    """Grow the batch size while observed answer quality stays high.

    The Statistics Manager feeds back the recent agreement rate for the task
    group; the batch size increases toward ``max_size`` while agreement stays
    above ``target_agreement`` and shrinks when workers start disagreeing
    (a symptom of fatigue on long HITs).
    """

    initial_size: int = 2
    max_size: int = 10
    target_agreement: float = 0.8

    def __post_init__(self) -> None:
        if self.initial_size < 1 or self.max_size < self.initial_size:
            raise TaskError("adaptive batching sizes must satisfy 1 <= initial <= max")
        self._current = self.initial_size

    @property
    def current_size(self) -> int:
        """The batch size currently in force."""
        return self._current

    def observe_agreement(self, agreement: float) -> None:
        """Feed back observed worker agreement for the latest completed HIT."""
        if agreement >= self.target_agreement and self._current < self.max_size:
            self._current += 1
        elif agreement < self.target_agreement and self._current > 1:
            self._current = max(1, self._current - 2)

    def batch_size(self, pending: int) -> int:
        return min(self._current, max(pending, 1))

    def should_flush(self, pending: int, *, force: bool) -> bool:
        if pending <= 0:
            return False
        return pending >= self._current or force

    def describe(self) -> str:
        return (
            f"adaptive batching (currently {self._current} tasks/HIT, "
            f"max {self.max_size}, target agreement {self.target_agreement:.0%})"
        )


def batches_of(tasks: list[Task], size: int) -> list[list[Task]]:
    """Split ``tasks`` into consecutive batches of at most ``size``."""
    if size < 1:
        raise TaskError("batch size must be >= 1")
    return [tasks[start:start + size] for start in range(0, len(tasks), size)]
