"""Execution context shared by every operator of one running query."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.spec import TaskSpec
from repro.core.tasks.task_manager import TaskManager
from repro.crowd.clock import SimulationClock
from repro.storage.database import Database

if TYPE_CHECKING:  # pragma: no cover - avoids import cycle with the optimizer
    from repro.core.optimizer.optimizer import QueryOptimizer

__all__ = ["QueryConfig", "ExecutionContext"]


@dataclass
class QueryConfig:
    """Per-query tuning knobs, mostly set by the optimizer.

    ``default_assignments`` is the redundancy used when a task spec does not
    override it; ``target_confidence`` drives the adaptive assignment rule
    (see :class:`repro.core.optimizer.optimizer.QueryOptimizer`).
    """

    budget: float | None = None
    default_assignments: int | None = None
    target_confidence: float = 0.9
    adaptive: bool = True
    use_cache: bool = True
    use_task_model: bool = True
    #: Seconds (on the engine clock, simulated or wall) the query may run
    #: after admission before the deadline fires.  ``None`` disables it.
    deadline: float | None = None
    #: What happens when the deadline fires: ``"error"`` raises
    #: :class:`~repro.errors.QueryDeadlineError` from ``wait()``;
    #: ``"partial"`` finishes ``DEGRADED`` with the rows landed so far.
    degradation: str = "error"
    #: Under deadline/budget pressure, shrink waves to a single assignment
    #: and stop burning retry attempts instead of stalling.  Default off so
    #: existing workloads keep byte-identical HIT counts.
    shed_under_pressure: bool = False

    def clone(self, **overrides) -> "QueryConfig":
        """A copy of this config with ``overrides`` applied.

        The engine clones its default config (and any caller-supplied config)
        for every query, so per-query mutations — e.g. resolving the effective
        budget — never leak into other queries, and new fields are carried
        over automatically instead of being hand-copied.
        """
        return dataclasses.replace(self, **overrides)


@dataclass
class ExecutionContext:
    """Everything an operator needs to run: services, identifiers and config."""

    query_id: str
    database: Database
    task_manager: TaskManager
    statistics: StatisticsManager
    budget: BudgetLedger
    clock: SimulationClock
    config: QueryConfig = field(default_factory=QueryConfig)
    optimizer: "QueryOptimizer | None" = None

    def assignments_for(self, spec: TaskSpec) -> int:
        """Redundancy to use for a task of ``spec``.

        Resolution order: an explicit per-query override, then the adaptive
        optimizer choice (re-evaluated per task, so it tightens as statistics
        accumulate mid-query — Section 2's adaptive requirement), then the
        spec's own default.
        """
        if self.config.default_assignments is not None:
            return self.config.default_assignments
        if self.config.adaptive and self.optimizer is not None:
            return self.optimizer.choose_assignments(
                spec, target_confidence=self.config.target_confidence
            )
        return spec.assignments
