"""The engine-level multi-query scheduler.

The paper's Task Manager "maintains a global queue of tasks that have been
enqueued by all operators" — which only pays off if the engine actually runs
its queries *together*.  :class:`EngineScheduler` owns the run loop for every
active query on one simulated marketplace:

* **Admission control** — at most ``max_concurrent_queries`` queries run at a
  time; later submissions wait in a FIFO pending-admission queue and are
  admitted as running queries reach a terminal state.
* **Ready-queue stepping** — the scheduler only touches *runnable* queries.
  A query that reports no local progress is parked and costs nothing per
  pass; it re-enters the ready queue when one of its task results is
  delivered (the Task Manager's delivery hook), so per-pass cost tracks the
  number of queries with work to do, not the number admitted.
* **Priority-weighted round-robin** — each pass gives every runnable query
  local steps in proportion to its priority (a deficit counter accrues
  ``priority`` credits per pass and spends one per step; the default
  priority of 1.0 degenerates to plain round-robin).  Runnable queries are
  stepped in admission order, so parking neighbours never reorders work.
* **Cross-query HIT batching** — queries deposit tasks during their local
  steps *without* flushing; the scheduler then runs one shared Task Manager
  flush per pass (which itself visits only dirty task groups), so tasks
  from several queries land in the same HIT.
* **A single, batched clock-advance decision** — simulated time moves only
  when no runnable query exists and no partial batch can be force-flushed,
  and then it keeps firing marketplace events until one actually matters (a
  result delivery, a requeue, a routed error): pure bookkeeping events (an
  assignment submitted to a still-unfilled HIT, say) no longer cost a full
  scheduling pass each.  Individual executors never touch the clock.
* **Event-pushed failure routing** — the Task Manager pushes a signal when
  it records a budget or attempt-exhaustion error, and only then does the
  scheduler drain the error queues and retire the owning queries; nothing
  polls for errors that were never recorded.  Terminal queries are reaped
  from an event-fed list, not by scanning the active set every pass.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.core.exec.handle import QueryHandle, QueryStatus
from repro.core.tasks.task_manager import TaskManager
from repro.crowd.clock import ScheduledEvent, SimulationClock
from repro.errors import (
    BudgetExceededError,
    EngineOverloadedError,
    ExecutionError,
    QueryDeadlineError,
    QueryStalledError,
)
from repro.storage.row import Row

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.optimizer.adaptive import AdaptiveReplanner

__all__ = ["SchedulerEvent", "SchedulerMetrics", "EngineScheduler"]


@dataclass(frozen=True)
class SchedulerEvent:
    """One point in a query's lifecycle, stamped with simulated time."""

    time: float
    query_id: str
    event: str
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.event}@{self.time:,.0f}s"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class SchedulerMetrics:
    """Aggregate counters for the shared run loop."""

    passes: int = 0
    clock_advances: int = 0
    #: Clock advances that woke no query and queued no work — marketplace
    #: bookkeeping only (e.g. one of several assignments submitted).  With
    #: event-driven wakeups these cost a heap pop, not a scheduling pass.
    noop_clock_advances: int = 0
    queries_admitted: int = 0
    queries_finished: int = 0
    # Overload protection: submissions refused outright, waiting queries
    # evicted for higher-priority arrivals, deadlines that raised, deadlines
    # that degraded to partial results, and queries switched to shed mode.
    queries_rejected: int = 0
    queries_shed: int = 0
    deadline_misses: int = 0
    queries_degraded: int = 0
    queries_pressured: int = 0


@dataclass
class _ScheduledQuery:
    """Bookkeeping for one admitted query."""

    handle: QueryHandle
    priority: float = 1.0
    credit: float = 0.0
    started: bool = False
    #: Admission sequence number: runnable queries are stepped in this
    #: order, so the ready queue preserves the admission-order round-robin.
    seq: int = 0
    #: Absolute clock time the query's deadline maps to (None = no deadline).
    deadline_at: float | None = None
    #: The no-op clock event pinned at ``deadline_at`` so the event loop
    #: always has something to advance to; cancelled on early completion.
    deadline_event: ScheduledEvent | None = None
    #: Whether the Task Manager has been told to shed this query's redundancy.
    pressured: bool = False


class EngineScheduler:
    """Shared run loop for every query on one simulated marketplace."""

    def __init__(
        self,
        clock: SimulationClock,
        task_manager: TaskManager,
        *,
        max_concurrent_queries: int | None = None,
        replanner: "AdaptiveReplanner | None" = None,
        admission_queue_limit: int | None = None,
        overload_policy: str = "reject",
        overload_retry_after: float = 30.0,
    ) -> None:
        if max_concurrent_queries is not None and max_concurrent_queries < 1:
            raise ExecutionError("max_concurrent_queries must be >= 1 (or None for unlimited)")
        if admission_queue_limit is not None and admission_queue_limit < 0:
            raise ExecutionError(
                "admission_queue_limit must be >= 0 (or None for an unbounded queue)"
            )
        if overload_policy not in ("reject", "shed"):
            raise ExecutionError(
                f"overload_policy must be 'reject' or 'shed', got {overload_policy!r}"
            )
        if overload_retry_after <= 0:
            raise ExecutionError("overload_retry_after must be positive")
        self.clock = clock
        self.task_manager = task_manager
        self.max_concurrent_queries = max_concurrent_queries
        self.replanner = replanner
        #: Bound on the pending-admission queue (None = unbounded, the
        #: legacy behaviour).  Past it, new submissions are rejected with
        #: :class:`EngineOverloadedError` (``overload_policy="reject"``) or
        #: the lowest-priority waiting query is shed to make room
        #: (``overload_policy="shed"``).
        self.admission_queue_limit = admission_queue_limit
        self.overload_policy = overload_policy
        self.overload_retry_after = overload_retry_after
        self.metrics = SchedulerMetrics()
        self.events: list[SchedulerEvent] = []
        self._events_by_query: dict[str, list[SchedulerEvent]] = {}
        self._active: dict[str, _ScheduledQuery] = {}
        self._waiting: deque[_ScheduledQuery] = deque()
        #: Ids currently in the pending-admission queue — the O(1) duplicate /
        #: membership check behind :meth:`state_of`.
        self._waiting_ids: set[str] = set()
        #: The ready queue: admitted queries that may make local progress.
        #: Values are the same records as ``_active``; iteration sorts by
        #: admission ``seq`` so parking a neighbour never reorders stepping.
        self._runnable: dict[str, _ScheduledQuery] = {}
        self._admit_seq = itertools.count()
        #: Queries that reached a terminal state since the last reap —
        #: event-fed, so reaping never scans the active set.
        self._to_reap: list[str] = []
        self._errors_pending = False
        # Deadline bookkeeping: a lazy min-heap of (deadline_at, seq, id)
        # plus id -> record for queries that carry a deadline (waiting or
        # active).  Both empty unless deadlines are actually configured, so
        # the default path never touches them.
        self._deadlines: list[tuple[float, int, str]] = []
        self._deadline_seq = itertools.count()
        self._deadline_records: dict[str, _ScheduledQuery] = {}
        #: Queries that opted into ``shed_under_pressure`` and are not yet
        #: pressured — the only ones the per-pass pressure check visits.
        self._pressure_watch: dict[str, _ScheduledQuery] = {}
        # Durability wiring (both set by QurkEngine.enable_durability): the
        # journal receives every lifecycle event; the checkpoint hook runs
        # after a drain quiesces the engine, the natural snapshot point.
        self._journal = None
        self._checkpoint_hook = None
        task_manager.on_result_delivered(self._on_result_delivered)
        task_manager.on_error_recorded(self._on_error_recorded)

    def attach_journal(self, journal, *, checkpoint_hook=None) -> None:
        self._journal = journal
        self._checkpoint_hook = checkpoint_hook

    # -- submission and admission ---------------------------------------------------------

    def submit(self, handle: QueryHandle, *, priority: float = 1.0) -> QueryHandle:
        """Register a query with the shared run loop.

        The query is admitted immediately if a concurrency slot is free,
        otherwise it joins the pending-admission queue (status ``PENDING``)
        and is admitted when a running query finishes.  With a bounded
        admission queue, a submission that would overflow it is refused with
        :class:`~repro.errors.EngineOverloadedError` — or, under the
        ``shed`` policy, the lowest-priority waiting query is evicted to
        make room when the newcomer outranks it.
        """
        if priority <= 0:
            raise ExecutionError(f"query priority must be positive, got {priority}")
        record = _ScheduledQuery(handle=handle, priority=priority)
        # Stub executors (tests, tooling) may not carry an execution context;
        # they simply cannot opt into deadlines or pressure shedding.
        context = getattr(handle.executor, "context", None)
        config = context.config if context is not None else None
        if config is not None and config.deadline is not None:
            if config.deadline <= 0:
                raise ExecutionError(f"query deadline must be positive, got {config.deadline}")
            if config.degradation not in ("error", "partial"):
                raise ExecutionError(
                    f"degradation must be 'error' or 'partial', got {config.degradation!r}"
                )
            record.deadline_at = self.clock.now + config.deadline
            # A pinned no-op event guarantees the clock can always advance
            # *to* the deadline, even when the marketplace has gone silent.
            record.deadline_event = self.clock.schedule_at(
                record.deadline_at, lambda: None, label=f"deadline:{handle.query_id}"
            )
            heapq.heappush(
                self._deadlines, (record.deadline_at, next(self._deadline_seq), handle.query_id)
            )
            self._deadline_records[handle.query_id] = record
        if config is not None and config.shed_under_pressure:
            self._pressure_watch[handle.query_id] = record
        handle.scheduler = self
        self._record_event(handle.query_id, "submitted", f"priority {priority:g}")
        self._waiting.append(record)
        self._waiting_ids.add(handle.query_id)
        self._admit()
        if (
            self.admission_queue_limit is not None
            and len(self._waiting) > self.admission_queue_limit
        ):
            self._handle_overload(record)
        return handle

    def _admit(self) -> None:
        while self._waiting and (
            self.max_concurrent_queries is None
            or len(self._active) < self.max_concurrent_queries
        ):
            record = self._waiting.popleft()
            self._waiting_ids.discard(record.handle.query_id)
            if record.handle.is_terminal:
                continue
            record.seq = next(self._admit_seq)
            self._active[record.handle.query_id] = record
            self._runnable[record.handle.query_id] = record
            self.metrics.queries_admitted += 1
            self._record_event(record.handle.query_id, "admitted")

    # -- overload protection --------------------------------------------------------------

    def _handle_overload(self, newcomer: _ScheduledQuery) -> None:
        """The admission queue overflowed: shed someone, or refuse the newcomer.

        Under ``shed``, the victim is the lowest-priority waiting query
        (ties broken oldest-first); when that victim is the newcomer itself
        — it outranks nobody — the outcome is the same as ``reject``.  A
        rejected submission raises so the caller gets the structured
        retry-after signal; a shed victim's error surfaces through its own
        handle instead.
        """
        victim = newcomer
        if self.overload_policy == "shed":
            victim = min(self._waiting, key=lambda record: record.priority)
        queue_depth = len(self._waiting) - 1
        error = EngineOverloadedError(
            f"query {victim.handle.query_id} refused: the pending-admission queue is full "
            f"({queue_depth} waiting, limit {self.admission_queue_limit}); "
            f"retry in {self.overload_retry_after:g}s",
            retry_after=self.overload_retry_after,
            query_id=victim.handle.query_id,
        )
        self._waiting.remove(victim)
        self._waiting_ids.discard(victim.handle.query_id)
        self._forget_overload_state(victim)
        victim.handle.status = QueryStatus.SHED
        victim.handle.error = error
        self.task_manager.cancel_query(victim.handle.query_id)
        if victim is newcomer:
            self.metrics.queries_rejected += 1
            self._record_event(victim.handle.query_id, "rejected", "admission queue full")
            raise error
        self.metrics.queries_shed += 1
        self._record_event(
            victim.handle.query_id,
            "shed",
            f"evicted for {newcomer.handle.query_id} (priority {newcomer.priority:g} "
            f"> {victim.priority:g})",
        )

    def withdraw(self, query_id: str) -> bool:
        """Pull a never-admitted query back out of the pending queue.

        The cluster coordinator uses this to rebalance pending (unstarted)
        queries off an unhealthy shard: the handle stays ``PENDING`` and is
        simply forgotten by this scheduler, so the caller can resubmit the
        same statement elsewhere.  Admitted queries cannot be withdrawn —
        their operators may already hold in-flight crowd work.
        """
        if query_id not in self._waiting_ids:
            return False
        for index, record in enumerate(self._waiting):
            if record.handle.query_id == query_id:
                del self._waiting[index]
                self._waiting_ids.discard(query_id)
                self._forget_overload_state(record)
                self._record_event(query_id, "withdrawn", "rebalanced off this engine")
                return True
        return False

    def _forget_overload_state(self, record: _ScheduledQuery) -> None:
        """Drop a query's deadline/pressure bookkeeping (idempotent)."""
        query_id = record.handle.query_id
        if record.deadline_event is not None:
            record.deadline_event.cancel()
            record.deadline_event = None
        self._deadline_records.pop(query_id, None)
        self._pressure_watch.pop(query_id, None)

    # -- event-driven wakeups -------------------------------------------------------------

    def _on_result_delivered(self, result) -> None:
        """Task Manager delivery hook: the owning query can make progress."""
        record = self._active.get(result.task.query_id)
        if record is not None and not record.handle.is_terminal:
            self._runnable[result.task.query_id] = record

    def _on_error_recorded(self) -> None:
        """Task Manager error hook: drain the error queues at the next seam."""
        self._errors_pending = True

    def _retire(self, record: _ScheduledQuery) -> None:
        """A query turned terminal: leave the ready queue, await the reap."""
        query_id = record.handle.query_id
        self._forget_overload_state(record)
        if record.pressured:
            self.task_manager.set_pressure(query_id, False)
        self._runnable.pop(query_id, None)
        self._to_reap.append(query_id)

    # -- introspection --------------------------------------------------------------------

    def active_queries(self) -> list[str]:
        """Ids of admitted, not-yet-terminal queries, in admission order."""
        return list(self._active)

    def queued_queries(self) -> list[str]:
        """Ids of queries waiting for an admission slot, in arrival order."""
        return [record.handle.query_id for record in self._waiting]

    def runnable_queries(self) -> list[str]:
        """Ids of queries currently in the ready queue, in admission order."""
        return sorted(self._runnable, key=lambda query_id: self._runnable[query_id].seq)

    def state_of(self, query_id: str) -> str:
        """One of ``active``, ``queued`` or ``finished`` (by this scheduler)."""
        if query_id in self._active:
            return "active"
        if query_id in self._waiting_ids:
            return "queued"
        return "finished"

    def events_for(self, query_id: str) -> list[SchedulerEvent]:
        """Lifecycle events recorded for one query, oldest first."""
        return list(self._events_by_query.get(query_id, ()))

    def _record_event(self, query_id: str, event: str, detail: str = "") -> None:
        record = SchedulerEvent(self.clock.now, query_id, event, detail)
        self.events.append(record)
        self._events_by_query.setdefault(query_id, []).append(record)
        # The single choke point every lifecycle transition passes through
        # (admitted/started/completed/stalled/budget_exceeded/replanned/...),
        # so one hook journals them all.
        if self._journal is not None:
            self._journal.record(
                "query_event",
                {"query_id": query_id, "event": event, "detail": detail, "time": record.time},
            )

    # -- deadlines and pressure -----------------------------------------------------------

    def _next_deadline(self) -> float | None:
        """Earliest live deadline, or None.  Lazily prunes dead heap entries."""
        while self._deadlines:
            deadline_at, _, query_id = self._deadlines[0]
            record = self._deadline_records.get(query_id)
            if record is None or record.handle.is_terminal or record.deadline_at != deadline_at:
                heapq.heappop(self._deadlines)
                continue
            return deadline_at
        return None

    def _check_deadlines(self) -> bool:
        """Expire every query whose deadline has passed.  True if any did."""
        expired_any = False
        while True:
            deadline_at = self._next_deadline()
            if deadline_at is None or deadline_at > self.clock.now:
                return expired_any
            _, _, query_id = heapq.heappop(self._deadlines)
            record = self._deadline_records.get(query_id)
            if record is None or record.handle.is_terminal:
                continue
            self._expire_deadline(record)
            expired_any = True

    def _expire_deadline(self, record: _ScheduledQuery) -> None:
        """A deadline fired: degrade to partial results, or fail the query.

        Cutting at the deadline only cancels *future* work — everything that
        already happened is identical to an unconstrained same-seed run, so
        a degraded result is a strict prefix of the full result (same rows,
        subset of HITs, never over-billed).
        """
        handle = record.handle
        config = handle.executor.context.config
        rows = len(handle.results_table)
        was_active = handle.query_id in self._active
        if config.degradation == "partial":
            handle.status = QueryStatus.DEGRADED
            self.metrics.queries_degraded += 1
            event = "degraded"
            detail = f"deadline {config.deadline:g}s elapsed, keeping {rows} row(s)"
        else:
            handle.status = QueryStatus.DEADLINE_EXCEEDED
            handle.error = QueryDeadlineError(
                f"query {handle.query_id} missed its {config.deadline:g}s deadline "
                f"after emitting {rows} row(s)",
                query_id=handle.query_id,
                deadline=record.deadline_at or 0.0,
                rows_produced=rows,
            )
            self.metrics.deadline_misses += 1
            event = "deadline_exceeded"
            detail = f"deadline {config.deadline:g}s elapsed after {rows} row(s)"
        cancelled = self.task_manager.cancel_query(handle.query_id)
        if cancelled:
            detail += f", {cancelled} pending task(s) cancelled"
        self._record_event(handle.query_id, event, detail)
        if was_active:
            self._retire(record)
        else:
            # Still waiting for admission: the terminal record is discarded
            # by the next _admit() pass; only the bookkeeping goes now.
            self._forget_overload_state(record)

    def _apply_pressure(self) -> None:
        """Switch watched queries into shed mode once pressure builds.

        Pressure means: past half the deadline, or over 80% of the budget
        committed.  Only queries that opted in via ``shed_under_pressure``
        are watched, so the default path pays one empty-dict check per pass.
        """
        if not self._pressure_watch:
            return
        for query_id, record in list(self._pressure_watch.items()):
            handle = record.handle
            if record.pressured or handle.is_terminal:
                continue
            config = handle.executor.context.config
            reason = None
            if record.deadline_at is not None and config.deadline:
                if self.clock.now >= record.deadline_at - 0.5 * config.deadline:
                    reason = "past 50% of deadline"
            if reason is None:
                budget = handle.executor.context.budget.budget(query_id)
                if budget.limit and budget.committed >= 0.8 * budget.limit:
                    reason = (
                        f"${budget.committed:.2f} of ${budget.limit:.2f} budget committed"
                    )
            if reason is None:
                continue
            record.pressured = True
            self.task_manager.set_pressure(query_id, True)
            self.metrics.queries_pressured += 1
            self._pressure_watch.pop(query_id, None)
            self._record_event(query_id, "pressure_shed", reason)

    # -- the shared run loop --------------------------------------------------------------

    def step(self, *, until: float | None = None) -> bool:
        """One global scheduling pass.  Returns True when anything progressed.

        Order of business: give every *runnable* query its priority-weighted
        share of local steps (operators only — no flush, no clock), run one
        shared non-forced flush so full cross-query batches post, route any
        pushed budget/exhaustion failures to their owning queries, and only
        if *nothing* moved anywhere force-flush partial batches and finally
        advance the shared clock — firing marketplace events until one of
        them wakes a query, queues work or routes an error (``until`` bounds
        that batch for deadline-driven callers).
        """
        self._admit()
        if not self._active:
            return False
        self.metrics.passes += 1
        progress = False
        if self._check_deadlines():
            # Expiring a query is progress: slots free up and waiters learn
            # their fate.  Reap now so successors are admitted this pass.
            self._reap()
            progress = True
        self._apply_pressure()

        runnable = sorted(self._runnable.values(), key=lambda record: record.seq)
        if runnable:
            # Let every starved runnable query accrue enough credit to step
            # at least once.  Parked queries neither accrue nor spend.
            while max(record.credit for record in runnable) < 1.0:
                for record in runnable:
                    record.credit += record.priority
        for record in runnable:
            if record.handle.is_terminal:
                self._runnable.pop(record.handle.query_id, None)
                continue
            steps = int(record.credit)
            record.credit -= steps
            moved = False
            for _ in range(steps):
                if not self._step_query(record):
                    break
                moved = True
                progress = True
            if steps > 0 and not moved and not record.handle.is_terminal:
                # Blocked on crowd work: park until a delivery wakes it.  A
                # query that took zero steps (a sub-1.0 priority still
                # accruing credit) was never *attempted* and must stay
                # runnable, or it would starve with nothing to wake it.
                self._runnable.pop(record.handle.query_id, None)

        if self._flush(force=False) > 0:
            progress = True
        if self._reap() > 0:
            progress = True
        if progress:
            return True
        if not self._active:
            return False

        # A forced flush (or clock advance) that posts nothing can still
        # retire queries — e.g. by routing a budget failure — and that is
        # progress too, so check the reap before falling through to a stall.
        posted = self._flush(force=True)
        if posted > 0 or self._reap() > 0:
            return True
        if self._advance_clock(until):
            self._check_deadlines()
            self._reap()
            return True

        if self.task_manager.has_outstanding_work():
            raise ExecutionError(
                "scheduler is stuck: tasks are outstanding but no crowd events are scheduled"
            )
        error = QueryStalledError(
            "scheduler is stuck: no active query can make progress and no work is outstanding "
            f"(active: {', '.join(self._active)})"
        )
        for record in list(self._active.values()):
            if record.handle.is_terminal:
                continue
            record.handle.status = QueryStatus.STALLED
            record.handle.error = error
            self.task_manager.cancel_query(record.handle.query_id)
            self._record_event(record.handle.query_id, "stalled")
            self._retire(record)
        self._reap()
        raise error

    def _advance_clock(self, until: float | None) -> bool:
        """Fire marketplace events until one matters.  True if time moved.

        "Matters" means: a delivery put a query back on the ready queue, an
        expiry requeued tasks into the pending queues, or an error was
        pushed.  Anything else — partial submissions, abandonment
        replacements, duplicate-submission noise — is counted as a no-op
        advance and absorbed here instead of costing a full pass.  ``until``
        stops the batch once the clock reaches a caller's deadline, and the
        earliest live *query* deadline bounds it the same way so an expiring
        query is noticed the moment the clock crosses its deadline.
        """
        deadline = self._next_deadline()
        if deadline is not None and (until is None or deadline < until):
            until = deadline
        advanced = False
        while self.clock.run_next():
            self.metrics.clock_advances += 1
            advanced = True
            if self._errors_pending:
                self._route_errors()
            if self._runnable or self._to_reap or self.task_manager.pending_tasks() > 0:
                break
            self.metrics.noop_clock_advances += 1
            if until is not None and self.clock.now >= until:
                break
        return advanced

    def _step_query(self, record: _ScheduledQuery) -> bool:
        handle = record.handle
        if handle.is_terminal:
            return False
        if not record.started:
            record.started = True
            handle.status = QueryStatus.RUNNING
            self._record_event(handle.query_id, "started")
        try:
            moved = handle.executor.step_local(flush=False, raise_on_budget=False)
            if self.replanner is not None and not handle.is_terminal:
                # Operator-completion barrier: when an operator of this query
                # just finished, the replanner re-costs the not-yet-started
                # plan suffix with observed statistics and may swap pending
                # strategies (join interface, sort interface, redundancy).
                for change in self.replanner.maybe_replan(handle):
                    self._record_event(handle.query_id, "replanned", change.describe())
        except BudgetExceededError as error:
            self._fail_over_budget(record, error)
            return False
        except Exception as error:
            handle.status = QueryStatus.FAILED
            handle.error = error
            # Cancel what the dead query left in the shared queues so later
            # flushes don't post (and bill) HITs nobody will consume.
            self.task_manager.cancel_query(handle.query_id)
            self._record_event(handle.query_id, "failed", type(error).__name__)
            self._retire(record)
            raise
        if handle.executor.is_complete():
            self._complete(record)
            return True
        return moved

    def _flush(self, *, force: bool) -> int:
        posted = self.task_manager.flush(force=force, raise_on_budget=False)
        if self._errors_pending:
            self._route_errors()
        return posted

    def _route_errors(self) -> None:
        """Drain the pushed error queues (only called when one was recorded)."""
        self._errors_pending = False
        self._route_budget_errors()
        self._route_exhausted_errors()

    def _route_budget_errors(self) -> None:
        for query_id, error in self.task_manager.take_budget_errors().items():
            record = self._active.get(query_id)
            if record is None or record.handle.is_terminal:
                continue
            self._fail_over_budget(record, error)

    def _route_exhausted_errors(self) -> None:
        """Stall queries whose tasks ran out of fault-tolerance HIT attempts.

        The Task Manager abandons a task once its re-post attempt cap is
        burned (every posted HIT expired or came back empty); the owning
        query can then never complete, so it surfaces ``STALLED`` — keeping
        its partial results — instead of hanging, and without dragging down
        the other active queries the global stall path would also mark.
        """
        for query_id, cause in self.task_manager.take_exhausted_errors().items():
            record = self._active.get(query_id)
            if record is None or record.handle.is_terminal:
                continue
            handle = record.handle
            handle.status = QueryStatus.STALLED
            handle.error = QueryStalledError(
                f"query {query_id} stalled after emitting "
                f"{len(handle.results_table)} row(s): {cause}"
            )
            cancelled = self.task_manager.cancel_query(query_id)
            self._record_event(
                query_id,
                "stalled",
                f"task attempts exhausted, {cancelled} pending task(s) cancelled",
            )
            self._retire(record)

    def _fail_over_budget(self, record: _ScheduledQuery, error: BudgetExceededError) -> None:
        handle = record.handle
        handle.status = QueryStatus.BUDGET_EXCEEDED
        handle.error = error
        cancelled = self.task_manager.cancel_query(handle.query_id)
        self._record_event(
            handle.query_id, "budget_exceeded", f"{cancelled} pending task(s) cancelled"
        )
        self._retire(record)

    def _complete(self, record: _ScheduledQuery) -> None:
        handle = record.handle
        handle.executor.close()
        handle.status = QueryStatus.COMPLETED
        # A plan can finish with speculative tasks still queued (e.g. a LIMIT
        # satisfied early); drop them before a shared flush pays for them.
        cancelled = self.task_manager.cancel_query(handle.query_id)
        detail = f"{len(handle.results_table)} row(s)"
        if cancelled:
            detail += f", {cancelled} speculative task(s) cancelled"
        self._record_event(handle.query_id, "completed", detail)
        self._retire(record)

    def _reap(self) -> int:
        """Remove terminal queries from the active set and admit successors.

        Fed by :meth:`_retire` at every terminal transition, so it only ever
        touches queries that actually finished — no per-pass scan.
        """
        if not self._to_reap:
            return 0
        finished = 0
        for query_id in self._to_reap:
            record = self._active.pop(query_id, None)
            if record is None:
                continue
            self._runnable.pop(query_id, None)
            finished += 1
            self.metrics.queries_finished += 1
            if self.replanner is not None:
                self.replanner.release(query_id)
        self._to_reap.clear()
        if finished:
            self._admit()
        return finished

    # -- driving to a target --------------------------------------------------------------

    def has_work(self) -> bool:
        """Whether any admitted or queued query is not yet terminal."""
        return bool(self._active) or bool(self._waiting)

    def pump(self, *, max_passes: int = 1) -> bool:
        """Run up to ``max_passes`` scheduling passes without blocking policy.

        The live-traffic entry point: a cluster worker serving a request/
        response front end calls this between messages, so queries progress
        incrementally instead of monopolising the worker until completion.
        Global stalls are absorbed — :meth:`step` has already marked every
        stuck query ``STALLED`` and retired it before raising, and a server
        surfaces stalls per-query through handle status, not an exception.
        Returns True when any pass made progress.
        """
        progressed = False
        for _ in range(max(max_passes, 1)):
            if not self.has_work():
                break
            try:
                if not self.step():
                    break
            except QueryStalledError:
                progressed = True
                break
            progressed = True
        return progressed

    def drain(self) -> int:
        """Drive every admitted and queued query to a terminal state.

        Exactly the pass sequence of calling :meth:`wait` on each handle in
        turn — :meth:`step` is global, so the stepping order is independent
        of which handle is watched — but stalls are recorded on the handles
        instead of raised, letting the remaining queries finish.  Returns
        the number of queries that reached a terminal state.
        """
        if self._journal is not None:
            # Drain boundaries shape scheduling (which queries run
            # concurrently), so recovery must reproduce them: the record is
            # forced durable *before* the drain starts, and replay re-runs
            # the drain to completion when it reaches this LSN.
            self._journal.record("drain", {}, durable=True)
        finished_before = self.metrics.queries_finished
        while self.has_work():
            try:
                if not self.step():
                    break
            except QueryStalledError:
                continue  # stalled queries were retired; keep driving the rest
        if self._checkpoint_hook is not None:
            # A completed drain is the engine's natural quiescent point;
            # the hook snapshots (and truncates the WAL) when one is due.
            self._checkpoint_hook()
        return self.metrics.queries_finished - finished_before

    def run_until(self, simulated_time: float, *, watch: QueryHandle | None = None) -> None:
        """Step until the clock reaches ``simulated_time`` (or work runs out).

        When ``watch`` is given, also stop as soon as that query reaches a
        terminal state — concurrent queries keep whatever progress they made
        along the way and resume on the next call.
        """
        while self.clock.now < simulated_time:
            if watch is not None and watch.is_terminal:
                return
            if not self.step(until=simulated_time):
                return

    def wait(self, handle: QueryHandle) -> list[Row]:
        """Drive the run loop until ``handle`` finishes; return its rows.

        Every scheduling pass also progresses the other active queries, so
        waiting on one handle naturally advances the whole marketplace.
        Budget exhaustion surfaces as ``status = BUDGET_EXCEEDED`` with
        partial results; a stall raises
        :class:`~repro.errors.QueryStalledError` instead of silently
        returning an incomplete result set.
        """
        while not handle.is_terminal:
            if not self.step():
                break
        if not handle.is_terminal:
            handle.status = QueryStatus.STALLED
            handle.error = QueryStalledError(
                f"query {handle.query_id} stalled after emitting "
                f"{len(handle.results_table)} row(s): the scheduler ran out of work"
            )
            self.task_manager.cancel_query(handle.query_id)
            self._record_event(handle.query_id, "stalled")
            record = self._active.get(handle.query_id)
            if record is not None:
                self._retire(record)
                self._reap()
            raise handle.error
        if (
            handle.status
            in (QueryStatus.STALLED, QueryStatus.DEADLINE_EXCEEDED, QueryStatus.SHED)
            and handle.error is not None
        ):
            # A targeted stall (task attempts exhausted), a missed deadline
            # under ``degradation="error"`` or a load-shedding eviction set
            # the status without raising; waiting on the handle must still
            # surface it rather than silently returning an incomplete result
            # set.  ``DEGRADED`` intentionally falls through — partial
            # results are the contract of ``degradation="partial"``.
            raise handle.error
        return handle.results()
