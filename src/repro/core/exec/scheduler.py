"""The engine-level multi-query scheduler.

The paper's Task Manager "maintains a global queue of tasks that have been
enqueued by all operators" — which only pays off if the engine actually runs
its queries *together*.  :class:`EngineScheduler` owns the run loop for every
active query on one simulated marketplace:

* **Admission control** — at most ``max_concurrent_queries`` queries run at a
  time; later submissions wait in a FIFO pending-admission queue and are
  admitted as running queries reach a terminal state.
* **Priority-weighted round-robin stepping** — each global pass gives every
  admitted query local steps in proportion to its priority (a deficit
  counter accrues ``priority`` credits per pass and spends one per step;
  the default priority of 1.0 degenerates to plain round-robin).
* **Cross-query HIT batching** — queries deposit tasks during their local
  steps *without* flushing; the scheduler then runs one shared Task Manager
  flush per pass, so tasks from several queries land in the same HIT.
* **A single clock-advance decision** — simulated time moves only when no
  admitted query can make local progress and no partial batch can be
  force-flushed.  Individual executors never touch the clock.
* **Per-query lifecycle** — submission, admission, start, completion, budget
  exhaustion and failure are recorded as :class:`SchedulerEvent`\\ s, which
  the dashboard surfaces, and budget failures raised inside shared flushes
  are routed back to the owning query instead of whichever handle happened
  to be stepping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.core.exec.handle import QueryHandle, QueryStatus
from repro.core.tasks.task_manager import TaskManager
from repro.crowd.clock import SimulationClock
from repro.errors import BudgetExceededError, ExecutionError, QueryStalledError
from repro.storage.row import Row

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.optimizer.adaptive import AdaptiveReplanner

__all__ = ["SchedulerEvent", "SchedulerMetrics", "EngineScheduler"]


@dataclass(frozen=True)
class SchedulerEvent:
    """One point in a query's lifecycle, stamped with simulated time."""

    time: float
    query_id: str
    event: str
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.event}@{self.time:,.0f}s"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class SchedulerMetrics:
    """Aggregate counters for the shared run loop."""

    passes: int = 0
    clock_advances: int = 0
    queries_admitted: int = 0
    queries_finished: int = 0


@dataclass
class _ScheduledQuery:
    """Bookkeeping for one admitted query."""

    handle: QueryHandle
    priority: float = 1.0
    credit: float = 0.0
    started: bool = False


class EngineScheduler:
    """Shared run loop for every query on one simulated marketplace."""

    def __init__(
        self,
        clock: SimulationClock,
        task_manager: TaskManager,
        *,
        max_concurrent_queries: int | None = None,
        replanner: "AdaptiveReplanner | None" = None,
    ) -> None:
        if max_concurrent_queries is not None and max_concurrent_queries < 1:
            raise ExecutionError("max_concurrent_queries must be >= 1 (or None for unlimited)")
        self.clock = clock
        self.task_manager = task_manager
        self.max_concurrent_queries = max_concurrent_queries
        self.replanner = replanner
        self.metrics = SchedulerMetrics()
        self.events: list[SchedulerEvent] = []
        self._events_by_query: dict[str, list[SchedulerEvent]] = {}
        self._active: dict[str, _ScheduledQuery] = {}
        self._waiting: deque[_ScheduledQuery] = deque()

    # -- submission and admission ---------------------------------------------------------

    def submit(self, handle: QueryHandle, *, priority: float = 1.0) -> QueryHandle:
        """Register a query with the shared run loop.

        The query is admitted immediately if a concurrency slot is free,
        otherwise it joins the pending-admission queue (status ``PENDING``)
        and is admitted when a running query finishes.
        """
        if priority <= 0:
            raise ExecutionError(f"query priority must be positive, got {priority}")
        record = _ScheduledQuery(handle=handle, priority=priority)
        handle.scheduler = self
        self._record_event(handle.query_id, "submitted", f"priority {priority:g}")
        self._waiting.append(record)
        self._admit()
        return handle

    def _admit(self) -> None:
        while self._waiting and (
            self.max_concurrent_queries is None
            or len(self._active) < self.max_concurrent_queries
        ):
            record = self._waiting.popleft()
            if record.handle.is_terminal:
                continue
            self._active[record.handle.query_id] = record
            self.metrics.queries_admitted += 1
            self._record_event(record.handle.query_id, "admitted")

    # -- introspection --------------------------------------------------------------------

    def active_queries(self) -> list[str]:
        """Ids of admitted, not-yet-terminal queries, in admission order."""
        return list(self._active)

    def queued_queries(self) -> list[str]:
        """Ids of queries waiting for an admission slot, in arrival order."""
        return [record.handle.query_id for record in self._waiting]

    def state_of(self, query_id: str) -> str:
        """One of ``active``, ``queued`` or ``finished`` (by this scheduler)."""
        if query_id in self._active:
            return "active"
        if any(record.handle.query_id == query_id for record in self._waiting):
            return "queued"
        return "finished"

    def events_for(self, query_id: str) -> list[SchedulerEvent]:
        """Lifecycle events recorded for one query, oldest first."""
        return list(self._events_by_query.get(query_id, ()))

    def _record_event(self, query_id: str, event: str, detail: str = "") -> None:
        record = SchedulerEvent(self.clock.now, query_id, event, detail)
        self.events.append(record)
        self._events_by_query.setdefault(query_id, []).append(record)

    # -- the shared run loop --------------------------------------------------------------

    def step(self) -> bool:
        """One global scheduling pass.  Returns True when anything progressed.

        Order of business: give every admitted query its priority-weighted
        share of local steps (operators only — no flush, no clock), run one
        shared non-forced flush so full cross-query batches post, route any
        budget failures to their owning queries, and only if *nothing* moved
        anywhere force-flush partial batches and finally advance the shared
        clock to the next crowd event.
        """
        self._admit()
        if not self._active:
            return False
        self.metrics.passes += 1
        progress = False

        # Let every starved query accrue enough credit to step at least once.
        while self._active and max(r.credit for r in self._active.values()) < 1.0:
            for record in self._active.values():
                record.credit += record.priority

        for record in list(self._active.values()):
            steps = int(record.credit)
            record.credit -= steps
            for _ in range(steps):
                if not self._step_query(record):
                    break
                progress = True

        if self._flush(force=False) > 0:
            progress = True
        if self._reap() > 0:
            progress = True
        if progress:
            return True
        if not self._active:
            return False

        # A forced flush (or clock advance) that posts nothing can still
        # retire queries — e.g. by routing a budget failure — and that is
        # progress too, so check the reap before falling through to a stall.
        posted = self._flush(force=True)
        if posted > 0 or self._reap() > 0:
            return True
        if self.clock.run_next():
            self.metrics.clock_advances += 1
            # Clock events include HIT expiries, whose requeues may have
            # burned a task's last attempt — route the stall promptly.
            self._route_exhausted_errors()
            self._reap()
            return True

        if self.task_manager.has_outstanding_work():
            raise ExecutionError(
                "scheduler is stuck: tasks are outstanding but no crowd events are scheduled"
            )
        error = QueryStalledError(
            "scheduler is stuck: no active query can make progress and no work is outstanding "
            f"(active: {', '.join(self._active)})"
        )
        for record in list(self._active.values()):
            if record.handle.is_terminal:
                continue
            record.handle.status = QueryStatus.STALLED
            record.handle.error = error
            self.task_manager.cancel_query(record.handle.query_id)
            self._record_event(record.handle.query_id, "stalled")
        self._reap()
        raise error

    def _step_query(self, record: _ScheduledQuery) -> bool:
        handle = record.handle
        if handle.is_terminal:
            return False
        if not record.started:
            record.started = True
            handle.status = QueryStatus.RUNNING
            self._record_event(handle.query_id, "started")
        try:
            moved = handle.executor.step_local(flush=False, raise_on_budget=False)
            if self.replanner is not None and not handle.is_terminal:
                # Operator-completion barrier: when an operator of this query
                # just finished, the replanner re-costs the not-yet-started
                # plan suffix with observed statistics and may swap pending
                # strategies (join interface, sort interface, redundancy).
                for change in self.replanner.maybe_replan(handle):
                    self._record_event(handle.query_id, "replanned", change.describe())
        except BudgetExceededError as error:
            self._fail_over_budget(handle, error)
            return False
        except Exception as error:
            handle.status = QueryStatus.FAILED
            handle.error = error
            # Cancel what the dead query left in the shared queues so later
            # flushes don't post (and bill) HITs nobody will consume.
            self.task_manager.cancel_query(handle.query_id)
            self._record_event(handle.query_id, "failed", type(error).__name__)
            raise
        if handle.executor.is_complete():
            self._complete(handle)
            return True
        return moved

    def _flush(self, *, force: bool) -> int:
        posted = self.task_manager.flush(force=force, raise_on_budget=False)
        self._route_budget_errors()
        self._route_exhausted_errors()
        return posted

    def _route_budget_errors(self) -> None:
        for query_id, error in self.task_manager.take_budget_errors().items():
            record = self._active.get(query_id)
            if record is None or record.handle.is_terminal:
                continue
            self._fail_over_budget(record.handle, error)

    def _route_exhausted_errors(self) -> None:
        """Stall queries whose tasks ran out of fault-tolerance HIT attempts.

        The Task Manager abandons a task once its re-post attempt cap is
        burned (every posted HIT expired or came back empty); the owning
        query can then never complete, so it surfaces ``STALLED`` — keeping
        its partial results — instead of hanging, and without dragging down
        the other active queries the global stall path would also mark.
        """
        for query_id, cause in self.task_manager.take_exhausted_errors().items():
            record = self._active.get(query_id)
            if record is None or record.handle.is_terminal:
                continue
            handle = record.handle
            handle.status = QueryStatus.STALLED
            handle.error = QueryStalledError(
                f"query {query_id} stalled after emitting "
                f"{len(handle.results_table)} row(s): {cause}"
            )
            cancelled = self.task_manager.cancel_query(query_id)
            self._record_event(
                query_id,
                "stalled",
                f"task attempts exhausted, {cancelled} pending task(s) cancelled",
            )

    def _fail_over_budget(self, handle: QueryHandle, error: BudgetExceededError) -> None:
        handle.status = QueryStatus.BUDGET_EXCEEDED
        handle.error = error
        cancelled = self.task_manager.cancel_query(handle.query_id)
        self._record_event(
            handle.query_id, "budget_exceeded", f"{cancelled} pending task(s) cancelled"
        )

    def _complete(self, handle: QueryHandle) -> None:
        handle.executor.close()
        handle.status = QueryStatus.COMPLETED
        # A plan can finish with speculative tasks still queued (e.g. a LIMIT
        # satisfied early); drop them before a shared flush pays for them.
        cancelled = self.task_manager.cancel_query(handle.query_id)
        detail = f"{len(handle.results_table)} row(s)"
        if cancelled:
            detail += f", {cancelled} speculative task(s) cancelled"
        self._record_event(handle.query_id, "completed", detail)

    def _reap(self) -> int:
        """Remove terminal queries from the active set and admit successors."""
        finished = [query_id for query_id, r in self._active.items() if r.handle.is_terminal]
        for query_id in finished:
            del self._active[query_id]
            self.metrics.queries_finished += 1
            if self.replanner is not None:
                self.replanner.release(query_id)
        if finished:
            self._admit()
        return len(finished)

    # -- driving to a target --------------------------------------------------------------

    def run_until(self, simulated_time: float, *, watch: QueryHandle | None = None) -> None:
        """Step until the clock reaches ``simulated_time`` (or work runs out).

        When ``watch`` is given, also stop as soon as that query reaches a
        terminal state — concurrent queries keep whatever progress they made
        along the way and resume on the next call.
        """
        while self.clock.now < simulated_time:
            if watch is not None and watch.is_terminal:
                return
            if not self.step():
                return

    def wait(self, handle: QueryHandle) -> list[Row]:
        """Drive the run loop until ``handle`` finishes; return its rows.

        Every scheduling pass also progresses the other active queries, so
        waiting on one handle naturally advances the whole marketplace.
        Budget exhaustion surfaces as ``status = BUDGET_EXCEEDED`` with
        partial results; a stall raises
        :class:`~repro.errors.QueryStalledError` instead of silently
        returning an incomplete result set.
        """
        while not handle.is_terminal:
            if not self.step():
                break
        if not handle.is_terminal:
            handle.status = QueryStatus.STALLED
            handle.error = QueryStalledError(
                f"query {handle.query_id} stalled after emitting "
                f"{len(handle.results_table)} row(s): the scheduler ran out of work"
            )
            self.task_manager.cancel_query(handle.query_id)
            self._record_event(handle.query_id, "stalled")
            raise handle.error
        if handle.status is QueryStatus.STALLED and handle.error is not None:
            # A targeted stall (task attempts exhausted) set the status
            # without raising; waiting on the handle must still surface it
            # rather than silently returning an incomplete result set.
            raise handle.error
        return handle.results()
