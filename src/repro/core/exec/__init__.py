"""Asynchronous query execution: context, executor and query handles."""

from repro.core.exec.context import ExecutionContext, QueryConfig
from repro.core.exec.executor import ExecutorMetrics, QueryExecutor
from repro.core.exec.handle import QueryHandle, QueryStatus

__all__ = [
    "ExecutionContext",
    "QueryConfig",
    "QueryExecutor",
    "ExecutorMetrics",
    "QueryHandle",
    "QueryStatus",
]
