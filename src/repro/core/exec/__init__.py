"""Asynchronous query execution: context, executor, scheduler and handles."""

from repro.core.exec.context import ExecutionContext, QueryConfig
from repro.core.exec.executor import ExecutorMetrics, QueryExecutor
from repro.core.exec.handle import TERMINAL_STATUSES, QueryHandle, QueryStatus
from repro.core.exec.scheduler import EngineScheduler, SchedulerEvent, SchedulerMetrics

__all__ = [
    "ExecutionContext",
    "QueryConfig",
    "QueryExecutor",
    "ExecutorMetrics",
    "EngineScheduler",
    "SchedulerEvent",
    "SchedulerMetrics",
    "QueryHandle",
    "QueryStatus",
    "TERMINAL_STATUSES",
]
