"""Query handles: how users watch an asynchronous Qurk query.

Because a single HIT can take minutes, Qurk queries do not block and return a
result set; they run asynchronously and append tuples to a results table that
"the user can periodically poll" (Section 2).  A :class:`QueryHandle` wraps
the executor, the results table and the per-query statistics, offering both
the polling pattern and a convenience :meth:`wait` that drives the simulation
to completion.
"""

from __future__ import annotations

import enum

from repro.core.exec.executor import QueryExecutor
from repro.core.optimizer.statistics import QueryStats
from repro.errors import BudgetExceededError
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["QueryStatus", "QueryHandle"]


class QueryStatus(enum.Enum):
    """Lifecycle of a submitted query."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    BUDGET_EXCEEDED = "budget_exceeded"
    FAILED = "failed"


class QueryHandle:
    """A running (or finished) Qurk query."""

    def __init__(self, query_id: str, sql: str, executor: QueryExecutor, results_table: Table):
        self.query_id = query_id
        self.sql = sql
        self.executor = executor
        self.results_table = results_table
        self.status = QueryStatus.PENDING
        self.error: Exception | None = None
        self._poll_watermark = results_table.last_row_id()

    # -- polling ------------------------------------------------------------------------

    def poll(self) -> list[Row]:
        """Return result rows that arrived since the previous poll."""
        new = self.results_table.rows_since(self._poll_watermark)
        if new:
            self._poll_watermark = new[-1][0]
        return [row for _, row in new]

    def results(self) -> list[Row]:
        """All result rows produced so far."""
        return self.results_table.rows()

    def __len__(self) -> int:
        return len(self.results_table)

    # -- driving execution -----------------------------------------------------------------

    def step(self) -> bool:
        """Advance the query a little (used by the dashboard's live view)."""
        if self.status in (QueryStatus.COMPLETED, QueryStatus.BUDGET_EXCEEDED, QueryStatus.FAILED):
            return False
        self.status = QueryStatus.RUNNING
        try:
            progress = self.executor.step()
        except BudgetExceededError as error:
            self.status = QueryStatus.BUDGET_EXCEEDED
            self.error = error
            return False
        except Exception as error:  # pragma: no cover - defensive
            self.status = QueryStatus.FAILED
            self.error = error
            raise
        if self.executor.is_complete():
            self.executor.close()
            self.status = QueryStatus.COMPLETED
        return progress

    def run_until(self, simulated_time: float) -> None:
        """Run the query until the simulated clock reaches ``simulated_time``."""
        while self.status not in (
            QueryStatus.COMPLETED,
            QueryStatus.BUDGET_EXCEEDED,
            QueryStatus.FAILED,
        ):
            if self.executor.context.clock.now >= simulated_time:
                return
            if not self.step():
                return

    def wait(self) -> list[Row]:
        """Drive the query to completion and return every result row."""
        while self.status not in (
            QueryStatus.COMPLETED,
            QueryStatus.BUDGET_EXCEEDED,
            QueryStatus.FAILED,
        ):
            if not self.step():
                break
        return self.results()

    # -- introspection -----------------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """Whether the query has produced all results it ever will."""
        return self.status is QueryStatus.COMPLETED

    @property
    def stats(self) -> QueryStats:
        """Per-query statistics (spend, HITs, cache/model savings, ...)."""
        return self.executor.context.statistics.query(self.query_id)

    @property
    def total_cost(self) -> float:
        """Dollars spent on crowd work for this query so far."""
        return self.stats.spent

    def describe_plan(self) -> str:
        """A compact, indented rendering of the physical plan."""
        lines: list[str] = []

        def visit(operator, depth: int) -> None:
            lines.append("  " * depth + operator.name)
            for child in operator.children:
                visit(child, depth + 1)

        visit(self.executor.root, 0)
        return "\n".join(lines)
