"""Query handles: how users watch an asynchronous Qurk query.

Because a single HIT can take minutes, Qurk queries do not block and return a
result set; they run asynchronously and append tuples to a results table that
"the user can periodically poll" (Section 2).  A :class:`QueryHandle` wraps
the executor, the results table and the per-query statistics, offering both
the polling pattern and a convenience :meth:`wait` that drives the simulation
to completion.

Handles created through :class:`~repro.engine.QurkEngine` are registered with
the engine's :class:`~repro.core.exec.scheduler.EngineScheduler`, so
:meth:`step`, :meth:`run_until` and :meth:`wait` delegate to the shared
scheduler: waiting on one handle also progresses every concurrent query on
the same marketplace, and HITs may be shared across queries.  A handle built
directly around a standalone executor (no scheduler) falls back to driving
its own executor, which owns the clock for the single-query case.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.core.exec.executor import QueryExecutor
from repro.core.optimizer.statistics import QueryStats
from repro.errors import BudgetExceededError, QueryStalledError
from repro.storage.row import Row
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle: scheduler imports handle
    from repro.core.exec.scheduler import EngineScheduler

__all__ = ["QueryStatus", "TERMINAL_STATUSES", "QueryHandle"]


class QueryStatus(enum.Enum):
    """Lifecycle of a submitted query."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    BUDGET_EXCEEDED = "budget_exceeded"
    STALLED = "stalled"
    FAILED = "failed"
    #: The deadline elapsed under ``degradation="error"``.
    DEADLINE_EXCEEDED = "deadline_exceeded"
    #: The deadline elapsed under ``degradation="partial"``; the handle holds
    #: whatever rows had landed — a correct prefix of the full-run result.
    DEGRADED = "degraded"
    #: Evicted from the pending-admission queue by a higher-priority arrival.
    SHED = "shed"


#: Statuses a query can never leave.
TERMINAL_STATUSES = frozenset(
    {
        QueryStatus.COMPLETED,
        QueryStatus.BUDGET_EXCEEDED,
        QueryStatus.STALLED,
        QueryStatus.FAILED,
        QueryStatus.DEADLINE_EXCEEDED,
        QueryStatus.DEGRADED,
        QueryStatus.SHED,
    }
)


class QueryHandle:
    """A running (or finished) Qurk query."""

    def __init__(
        self,
        query_id: str,
        sql: str,
        executor: QueryExecutor,
        results_table: Table,
        *,
        scheduler: "EngineScheduler | None" = None,
    ):
        self.query_id = query_id
        self.sql = sql
        self.executor = executor
        self.results_table = results_table
        self.scheduler = scheduler
        self.status = QueryStatus.PENDING
        self.error: Exception | None = None
        self._poll_watermark = results_table.last_row_id()

    # -- polling ------------------------------------------------------------------------

    def poll(self) -> list[Row]:
        """Return result rows that arrived since the previous poll."""
        new = self.results_table.rows_since(self._poll_watermark)
        if new:
            self._poll_watermark = new[-1][0]
        return [row for _, row in new]

    def results(self) -> list[Row]:
        """All result rows produced so far."""
        return self.results_table.rows()

    def __len__(self) -> int:
        return len(self.results_table)

    # -- driving execution -----------------------------------------------------------------

    def step(self) -> bool:
        """Advance execution a little (used by the dashboard's live view).

        Under a scheduler this runs one *global* scheduling pass — every
        active query gets a slice, shared batches are flushed, and the clock
        advances only if nobody moved.  Standalone handles step their own
        executor.
        """
        if self.is_terminal:
            return False
        if self.scheduler is not None:
            return self.scheduler.step()
        self.status = QueryStatus.RUNNING
        try:
            progress = self.executor.step()
        except BudgetExceededError as error:
            self.status = QueryStatus.BUDGET_EXCEEDED
            self.error = error
            return False
        except Exception as error:  # pragma: no cover - defensive
            self.status = QueryStatus.FAILED
            self.error = error
            raise
        if self.executor.is_complete():
            self.executor.close()
            self.status = QueryStatus.COMPLETED
        return progress

    def run_until(self, simulated_time: float) -> None:
        """Run the query until the simulated clock reaches ``simulated_time``."""
        if self.scheduler is not None:
            self.scheduler.run_until(simulated_time, watch=self)
            return
        while not self.is_terminal:
            if self.executor.context.clock.now >= simulated_time:
                return
            if not self.step():
                return

    def wait(self) -> list[Row]:
        """Drive the query to completion and return every result row.

        Raises :class:`~repro.errors.QueryStalledError` (and sets
        ``status = STALLED``) if execution stops making progress before the
        plan completes, rather than silently returning partial results.
        """
        if self.scheduler is not None:
            return self.scheduler.wait(self)
        while not self.is_terminal:
            if not self.step():
                break
        if self.status in (QueryStatus.RUNNING, QueryStatus.PENDING):
            self.status = QueryStatus.STALLED
            self.error = QueryStalledError(
                f"query {self.query_id} stalled after emitting "
                f"{len(self.results_table)} row(s): no further progress is possible"
            )
            raise self.error
        return self.results()

    # -- introspection -----------------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """Whether the query has produced all results it ever will."""
        return self.status is QueryStatus.COMPLETED

    @property
    def is_terminal(self) -> bool:
        """Whether the query has reached a state it can never leave."""
        return self.status in TERMINAL_STATUSES

    def plan_history(self) -> list:
        """The query's plan decisions and mid-query revisions, oldest first.

        The first entry records the physical plan the optimizer chose; later
        entries are :class:`~repro.core.optimizer.adaptive.PlanChange`
        records for every strategy the adaptive replanner swapped while the
        query ran.  Standalone handles (no scheduler) have no history.
        """
        if self.scheduler is not None and self.scheduler.replanner is not None:
            return self.scheduler.replanner.history(self.query_id)
        return []

    @property
    def stats(self) -> QueryStats:
        """Per-query statistics (spend, HITs, cache/model savings, ...)."""
        return self.executor.context.statistics.query(self.query_id)

    @property
    def total_cost(self) -> float:
        """Dollars spent on crowd work for this query so far."""
        return self.stats.spent

    def describe_plan(self) -> str:
        """A compact, indented rendering of the physical plan."""
        lines: list[str] = []

        def visit(operator, depth: int) -> None:
            lines.append("  " * depth + operator.name)
            for child in operator.children:
                visit(child, depth + 1)

        visit(self.executor.root, 0)
        return "\n".join(lines)
