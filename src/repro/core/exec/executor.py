"""The Query Executor (Figure 1).

The executor is a *pure per-query stepper* over a tree of asynchronous
operators: :meth:`QueryExecutor.step_local` steps every operator, propagates
end-of-input signals, and lets the Task Manager fold the query's new tasks
into (possibly cross-query) HIT batches.  It never advances the simulated
clock — under the engine, that decision belongs to the
:class:`~repro.core.exec.scheduler.EngineScheduler`, which advances time
exactly once, globally, when *no* active query can make local progress.

For standalone use (unit tests, programmatic plans with no engine attached),
:meth:`QueryExecutor.step` and :meth:`QueryExecutor.run` bundle the old
self-driving loop: local stepping plus forced flushes plus clock advances for
a single query that has the marketplace to itself.

Results flow into the results table via the plan's sink operator; the
executor itself never returns rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exec.context import ExecutionContext
from repro.core.operators.base import Operator
from repro.core.operators.sink import ResultSinkOperator
from repro.errors import ExecutionError
from repro.storage.batch import RowBatch

__all__ = ["ExecutorMetrics", "QueryExecutor"]


@dataclass
class ExecutorMetrics:
    """Aggregate counters for one query execution."""

    passes: int = 0
    clock_advances: int = 0
    started_at: float = 0.0
    finished_at: float | None = None

    @property
    def simulated_duration(self) -> float:
        """Simulated seconds between start and completion (0 while running)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at


class QueryExecutor:
    """Executes one physical plan to completion (or incrementally)."""

    def __init__(self, root: ResultSinkOperator, context: ExecutionContext):
        if not isinstance(root, ResultSinkOperator):
            raise ExecutionError("the plan root must be a results sink")
        self.root = root
        self.context = context
        self.metrics = ExecutorMetrics()
        self._operators: list[Operator] = list(root.walk())
        self._finish_signalled: set[int] = set()
        self._opened = False
        self._closed = False
        self._apply_drain_bounds()

    # -- lifecycle ----------------------------------------------------------------

    def open(self) -> None:
        """Open every operator exactly once."""
        if self._opened:
            return
        for operator in self._operators:
            operator.open(self.context)
        self.metrics.started_at = self.context.clock.now
        stats = self.context.statistics.query(self.context.query_id)
        stats.started_at = self.context.clock.now
        stats.budget = self.context.config.budget
        self._opened = True

    def close(self) -> None:
        if self._closed:
            return
        for operator in self._operators:
            operator.close()
        self.metrics.finished_at = self.context.clock.now
        self.context.statistics.query(self.context.query_id).finished_at = self.context.clock.now
        self._closed = True

    # -- stepping -----------------------------------------------------------------

    def is_complete(self) -> bool:
        """Whether the plan has produced every result it ever will."""
        return self.root.is_done()

    def step_local(self, *, flush: bool = True, raise_on_budget: bool = True) -> bool:
        """One pure local pass: step operators, propagate finishes, flush.

        Returns True when any local progress was made.  Never touches the
        clock — the engine scheduler (or the standalone :meth:`step` wrapper)
        decides when simulated time may advance.  The scheduler passes
        ``flush=False`` so all concurrent queries deposit their tasks before
        one shared flush builds cross-query HITs, and ``raise_on_budget=False``
        so budget exhaustion is routed per-query instead of raised here.
        """
        self.open()
        if self.is_complete():
            return False
        progress = False
        for operator in self._operators:
            if operator.step():
                progress = True
        if self._propagate_finishes():
            progress = True
        if flush and self.context.task_manager.flush(
            force=False, raise_on_budget=raise_on_budget
        ) > 0:
            progress = True
        if progress:
            self.metrics.passes += 1
        return progress

    def step(self) -> bool:
        """Run one standalone executor pass.  Returns True on any progress.

        A pass steps every operator, propagates end-of-input signals, and
        flushes full task batches.  When nothing moved locally, it forces a
        flush of partial batches and, failing that, advances the simulated
        clock to the next crowd event.  This self-driving loop is the
        standalone mode — engine-created queries are driven by the
        :class:`~repro.core.exec.scheduler.EngineScheduler` instead, which
        shares both the flush and the clock advance across all active queries.
        """
        if self.step_local():
            return True
        if self.is_complete():
            return False
        if self.context.task_manager.flush(force=True) > 0:
            self.metrics.passes += 1
            return True
        next_event = self.context.clock.next_event_time()
        if next_event is not None:
            self.context.clock.run_next()
            self.metrics.clock_advances += 1
            self.metrics.passes += 1
            return True
        if self.context.task_manager.has_outstanding_work():
            raise ExecutionError(
                "query is stuck: tasks are outstanding but no crowd events are scheduled"
            )
        if not self.is_complete():
            raise ExecutionError(
                "query is stuck: no operator can make progress and no work is outstanding"
            )
        return False

    def run(self, *, until_time: float | None = None, max_passes: int = 2_000_000) -> None:
        """Run until the plan completes (or the simulated deadline is reached)."""
        self.open()
        passes = 0
        while not self.is_complete():
            if until_time is not None and self.context.clock.now >= until_time:
                return
            if not self.step():
                break
            passes += 1
            if passes >= max_passes:
                raise ExecutionError(f"query did not finish within {max_passes} executor passes")
        if self.is_complete():
            self.close()

    # -- adaptive re-planning --------------------------------------------------------

    def replace_operator(self, old: Operator, new: Operator) -> None:
        """Swap a not-yet-started operator for ``new`` in the running plan.

        Used by the adaptive replanner to change a pending operator's
        strategy mid-query (e.g. a comparison sort for a rating sort).  The
        replacement inherits the old operator's position, input queues and
        end-of-input signals, and any input rows the old operator had merely
        buffered (:meth:`Operator.consumed_input`) are replayed in front of
        the queues, so no tuple is lost or reordered.  Refuses to replace an
        operator that has already submitted crowd work or emitted rows —
        money spent is never discarded.
        """
        if old not in self._operators:
            raise ExecutionError(f"operator {old.name} is not part of this plan")
        if old.metrics.tasks_created > 0 or old.metrics.rows_out > 0:
            raise ExecutionError(
                f"cannot replace operator {old.name}: it has already started "
                f"({old.metrics.tasks_created} task(s), {old.metrics.rows_out} row(s))"
            )
        if old.parent is None:
            raise ExecutionError("the plan root (results sink) cannot be replaced")
        if len(new._in_queues) != 0 or new.children:
            raise ExecutionError("the replacement operator must be freshly constructed")

        # Adopt the children and their queues/end-of-input state wholesale.
        new.children = old.children
        for child in new.children:
            child.parent = new
        new._in_queues = old._in_queues
        new._inputs_done = old._inputs_done
        for row, slot in reversed(old.consumed_input()):
            new._in_queues[slot].appendleft(RowBatch.single(row))

        new.parent = old.parent
        new.child_slot = old.child_slot
        old.parent.children[old.child_slot] = new
        if self._opened:
            new.open(self.context)
        self._operators = list(self.root.walk())
        self._finish_signalled.discard(id(old))
        self._apply_drain_bounds()

    # -- helpers ---------------------------------------------------------------------

    def _apply_drain_bounds(self) -> None:
        """Let purely local plans take big steps.

        The small per-step drain bound exists so crowd plans interleave local
        work with HIT submission and clock advances.  A plan with no crowd
        operator anywhere has nothing to interleave with — small steps just
        multiply scheduler passes — so every operator's bound is raised to
        :attr:`Operator.LOCAL_MAX_ROWS_PER_STEP` and a 100k-row scan drains
        in a dozen passes instead of thousands.  Crowd plans keep the small
        bound, preserving HIT batching behavior exactly.
        """
        if any(operator.IS_CROWD for operator in self._operators):
            bound = Operator.MAX_ROWS_PER_STEP
        else:
            bound = Operator.LOCAL_MAX_ROWS_PER_STEP
        for operator in self._operators:
            operator._max_rows_per_step = bound

    def _propagate_finishes(self) -> bool:
        signalled = False
        for operator in self._operators:
            if id(operator) in self._finish_signalled or operator.parent is None:
                continue
            if operator.is_done():
                operator.parent.finish_input(operator.child_slot)
                self._finish_signalled.add(id(operator))
                signalled = True
        return signalled

    def operators(self) -> list[Operator]:
        """All operators in the plan, children before parents."""
        return list(self._operators)
