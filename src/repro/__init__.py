"""Qurk reproduction: a declarative query processor for human (crowd) operators.

This package reproduces the system described in "Demonstration of Qurk: A
Query Processor for Human Operators" (Marcus, Wu, Karger, Madden, Miller --
SIGMOD 2011) on top of a fully simulated Mechanical Turk substrate.

Quickstart::

    from repro import QurkEngine
    from repro.workloads import CompaniesWorkload

    workload = CompaniesWorkload(n_companies=20)
    engine = QurkEngine()
    workload.install(engine.database)
    engine.register_oracle("findCEO", workload.oracle())
    engine.define_task(workload.findceo_spec())
    rows = engine.run(
        "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
        "FROM companies"
    )
"""

from repro.core.answers import (
    AnswerList,
    FieldwiseMajority,
    First,
    ListAll,
    MajorityVote,
    MeanRating,
    MedianRating,
    WeightedVote,
    get_aggregate,
)
from repro.core.exec.context import QueryConfig
from repro.core.exec.handle import QueryHandle, QueryStatus
from repro.core.exec.scheduler import EngineScheduler, SchedulerEvent
from repro.core.lang.sql_parser import parse_select
from repro.core.lang.task_parser import parse_task, parse_tasks
from repro.core.tasks.spec import (
    ComparisonResponse,
    FormResponse,
    JoinColumnsResponse,
    Parameter,
    RatingResponse,
    ReturnField,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.engine import QurkEngine
from repro.errors import QurkError

__version__ = "1.0.0"

__all__ = [
    "QurkEngine",
    "QueryHandle",
    "QueryStatus",
    "QueryConfig",
    "EngineScheduler",
    "SchedulerEvent",
    "QurkError",
    "TaskSpec",
    "TaskType",
    "FormResponse",
    "YesNoResponse",
    "JoinColumnsResponse",
    "ComparisonResponse",
    "RatingResponse",
    "Parameter",
    "ReturnField",
    "parse_select",
    "parse_task",
    "parse_tasks",
    "AnswerList",
    "MajorityVote",
    "WeightedVote",
    "First",
    "ListAll",
    "MeanRating",
    "MedianRating",
    "FieldwiseMajority",
    "get_aggregate",
    "__version__",
]
