"""Profile a benchmark module: ``python -m repro.profile <bench> [runner]``.

Performance PRs need before/after evidence, not vibes.  This helper runs one
benchmark module's ``run_*`` workload functions under :mod:`cProfile` and
prints the top cumulative-time entries, so a hot loop can be cited in a PR
description (or hunted down) with one command::

    python -m repro.profile e15                 # every run_* in bench_e15_*
    python -m repro.profile e13 run_engine_overhead_experiment
    python -m repro.profile e15 --top 40        # deeper dump
    python -m repro.profile e16 --shard 0 --shards 8   # one cluster worker

``--shard`` profiles a single named shard worker instead of the module's
``run_*`` sweep: the benchmark module must define ``shard_worker_workload``
(E16 does), which rebuilds exactly the query slice the cluster placement
routes to that worker and drives it in-process — so the profile shows one
worker's engine work without any process or IPC noise on top.

Benchmarks are discovered exactly like ``benchmarks/run_all.py`` discovers
them: by the ``e<N>`` tag or the full module stem, from the repository's
``benchmarks/`` directory.
"""

from __future__ import annotations

import argparse
import cProfile
import difflib
import importlib
import pstats
import sys
import time
from pathlib import Path

#: src/repro/profile.py -> repository root (the layout this repo ships).
REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"

DEFAULT_TOP = 20


def discover_module(selector: str) -> Path:
    """Resolve ``e15`` / ``bench_e15_control_plane`` to a benchmark file.

    A miss exits with the full benchmark list (tag and module stem) and a
    close-match suggestion, never a bare traceback — typos are the common
    case for a CLI helper.
    """
    candidates = sorted(BENCH_DIR.glob("bench_*.py"))
    by_name: dict[str, Path] = {}
    for module in candidates:
        parts = module.stem.split("_")
        if len(parts) > 1:
            by_name.setdefault(parts[1], module)  # bench_e15_control_plane -> e15
        by_name[module.stem] = module
    found = by_name.get(selector)
    if found is not None:
        return found
    close = difflib.get_close_matches(selector, list(by_name), n=3)
    hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
    listing = "\n".join(
        f"  {path.stem.split('_')[1]:<6} {path.stem}" for path in candidates
    )
    raise SystemExit(
        f"no benchmark matches {selector!r}{hint}\navailable benchmarks:\n{listing}"
    )


def runners_of(module, wanted: str | None) -> dict:
    runners = {
        name: fn
        for name, fn in vars(module).items()
        if name.startswith("run_") and callable(fn)
    }
    if not runners:
        raise SystemExit(f"{module.__name__} defines no run_* functions")
    if wanted is None:
        return runners
    if wanted not in runners:
        raise SystemExit(
            f"{module.__name__} has no runner {wanted!r} (known: {', '.join(sorted(runners))})"
        )
    return {wanted: runners[wanted]}


def profile_runner(name: str, fn, *, top: int, sort: str) -> None:
    print(f"\n=== {name} ===", flush=True)
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    fn()
    profiler.disable()
    wall = time.perf_counter() - started
    print(f"wall: {wall:.3f}s — top {top} by {sort} time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="cProfile a benchmark's run_* workload functions.",
    )
    parser.add_argument("bench", help="benchmark selector, e.g. e15 or bench_e15_control_plane")
    parser.add_argument("runner", nargs="?", default=None, help="one run_* function (default: all)")
    parser.add_argument("--top", type=int, default=DEFAULT_TOP, help="entries to print (default 20)")
    parser.add_argument(
        "--sort", default="cumulative", help="pstats sort key (default: cumulative)"
    )
    parser.add_argument(
        "--shard",
        type=int,
        default=None,
        help="profile one cluster shard worker in-process (needs shard_worker_workload)",
    )
    parser.add_argument(
        "--shards", type=int, default=8, help="cluster size the shard slice is cut from"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(BENCH_DIR))
    path = discover_module(args.bench)
    module = importlib.import_module(path.stem)
    if args.shard is not None:
        workload = getattr(module, "shard_worker_workload", None)
        if workload is None:
            raise SystemExit(
                f"{module.__name__} defines no shard_worker_workload; "
                "--shard only applies to cluster benchmarks (e.g. e16)"
            )
        if not 0 <= args.shard < args.shards:
            raise SystemExit(f"--shard must be in [0, {args.shards}), got {args.shard}")
        profile_runner(
            f"shard_worker_workload(shard_id={args.shard}, n_shards={args.shards})",
            lambda: workload(shard_id=args.shard, n_shards=args.shards),
            top=args.top,
            sort=args.sort,
        )
        return 0
    for name, fn in sorted(runners_of(module, args.runner).items()):
        profile_runner(name, fn, top=args.top, sort=args.sort)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
