"""The Qurk engine: the public entry point of the reproduction.

A :class:`QurkEngine` wires together every box of Figure 1 — storage engine,
statistics manager, query optimizer, executor, task manager, HIT compiler,
task cache, task model and the (simulated) MTurk platform — behind a small
API:

.. code-block:: python

    from repro import QurkEngine
    from repro.workloads import CompaniesWorkload

    workload = CompaniesWorkload(n_companies=20)
    engine = QurkEngine(seed=7)
    workload.install(engine.database)
    engine.register_oracle("findCEO", workload.oracle())
    engine.define_task(workload.findceo_spec())

    handle = engine.query(
        "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
        "FROM companies"
    )
    rows = handle.wait()

Queries run asynchronously against simulated time: ``handle.poll()`` mirrors
the paper's "poll the results table" pattern, ``handle.wait()`` drives the
simulation to completion.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.exec.context import ExecutionContext, QueryConfig
from repro.core.exec.executor import QueryExecutor
from repro.core.exec.handle import QueryHandle
from repro.core.exec.scheduler import EngineScheduler
from repro.core.lang.ast import SelectStatement
from repro.core.lang.sql_parser import parse_select
from repro.core.lang.task_parser import parse_task
from repro.core.optimizer.adaptive import AdaptiveReplanner
from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.cost_model import CostEstimate, CostModel
from repro.core.optimizer.optimizer import OptimizerConfig, QueryOptimizer
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.plan.planner import QueryPlanner
from repro.core.plan.registry import RegisteredTask, TaskRegistry
from repro.core.tasks.batching import BatchingPolicy
from repro.core.tasks.hit_compiler import HITCompiler
from repro.core.tasks.spec import TaskSpec
from repro.core.tasks.task import TaskKind
from repro.core.tasks.task_cache import CachePolicy, TaskCache
from repro.core.tasks.task_manager import TaskManager
from repro.core.tasks.task_model import TaskModelRegistry
from repro.crowd.breaker import BreakerConfig, MarketplaceCircuitBreaker
from repro.crowd.clock import SimulationClock
from repro.crowd.faults import FaultProfile
from repro.crowd.mturk import MTurkSimulator
from repro.crowd.oracle import AnswerOracle
from repro.crowd.pricing import DEFAULT_PRICING, PricingPolicy
from repro.crowd.quality import (
    GoldQuestion,
    GoldStandardPool,
    QualityConfig,
    WorkerReputation,
)
from repro.crowd.worker_pool import PopulationMix, WorkerPool
from repro.errors import QurkError, SnapshotError
from repro.storage.database import Database
from repro.storage.durability import (
    DurabilityConfig,
    EngineJournal,
    RecoveryResult,
    capture_engine_state,
    recover_engine,
)
from repro.storage.snapshot import write_snapshot
from repro.storage.wal import WriteAheadLog
from repro.workloads.oracles import CompositeOracle

__all__ = ["QurkEngine"]


class QurkEngine:
    """A complete Qurk instance bound to one simulated crowd marketplace.

    Parameters
    ----------
    seed:
        Master seed for the simulated worker population.
    worker_pool_size, population_mix:
        Size and composition of the simulated marketplace.
    pricing:
        Platform fee schedule.
    enable_cache / enable_task_model:
        Toggle the Task Cache and the learned Task Model (both on by
        default, as in the paper's dashboard discussion).
    cache_policy:
        Optional :class:`~repro.core.tasks.task_cache.CachePolicy` adding
        TTL expiry and reputation-gated admission to the Task Cache.
        ``None`` (the default) keeps the legacy never-expiring,
        admit-everything cache byte-identical.
    optimizer_config, default_query_config:
        Tuning knobs for the optimizer and for queries that do not override
        them.
    max_concurrent_queries:
        Admission-control limit for the engine scheduler: at most this many
        queries run concurrently; later queries wait in a FIFO admission
        queue.  ``None`` (the default) means unlimited.
    fault_profile:
        Optional :class:`~repro.crowd.faults.FaultProfile` enabling seeded
        marketplace misbehaviour (HIT expiry, worker abandonment, duplicate
        and late submissions).  The engine's Task Manager requeues tasks
        stranded by expired HITs; a task that burns through its attempt cap
        surfaces the owning query as ``STALLED``.
    quality:
        Optional :class:`~repro.crowd.quality.QualityConfig` switching on
        worker quality control: gold-standard probe questions, a per-worker
        reputation tracker feeding confidence-weighted voting, and adaptive
        (wave-based, early-stopping) redundancy.  ``None`` (the default)
        keeps the fixed-redundancy unweighted pipeline byte-identical.
    clock:
        The clock everything latency-related runs on.  ``None`` (the
        default) builds a fresh discrete-event
        :class:`~repro.crowd.clock.SimulationClock`; pass a
        :class:`~repro.crowd.wallclock.WallClock` to make simulated delays
        take real time (live-traffic mode behind the cluster front end).
    admission_queue_limit, overload_policy, overload_retry_after:
        Admission backpressure: bound the pending-admission queue at
        ``admission_queue_limit`` waiting queries.  Past it, a submission is
        refused with :class:`~repro.errors.EngineOverloadedError` carrying
        ``retry_after`` seconds (``overload_policy="reject"``), or the
        lowest-priority waiting query is shed to make room when the
        newcomer outranks it (``overload_policy="shed"``).  ``None`` (the
        default) keeps the queue unbounded.
    circuit_breaker:
        Optional :class:`~repro.crowd.breaker.BreakerConfig` wrapping HIT
        posting in a closed → open → half-open circuit breaker: consecutive
        fault-driven HIT expiries pause posting for an exponentially
        backed-off cooldown instead of hammering a degraded marketplace.
        ``None`` (the default) posts unconditionally.
    """

    def __init__(
        self,
        *,
        seed: int = 7,
        worker_pool_size: int = 150,
        population_mix: PopulationMix | None = None,
        pricing: PricingPolicy = DEFAULT_PRICING,
        enable_cache: bool = True,
        enable_task_model: bool = True,
        cache_policy: CachePolicy | None = None,
        optimizer_config: OptimizerConfig | None = None,
        default_query_config: QueryConfig | None = None,
        max_concurrent_queries: int | None = None,
        fault_profile: FaultProfile | None = None,
        quality: QualityConfig | None = None,
        clock: SimulationClock | None = None,
        admission_queue_limit: int | None = None,
        overload_policy: str = "reject",
        overload_retry_after: float = 30.0,
        circuit_breaker: BreakerConfig | None = None,
    ) -> None:
        self.database = Database()
        self.clock = clock if clock is not None else SimulationClock()
        self.oracle = CompositeOracle({})
        self.worker_pool = WorkerPool(
            size=worker_pool_size, mix=population_mix or PopulationMix(), seed=seed
        )
        self.fault_profile = fault_profile
        self.quality = quality
        self.reputation = WorkerReputation() if quality is not None else None
        self.gold_pool = GoldStandardPool()
        self.platform = MTurkSimulator(
            self.clock, self.worker_pool, self.oracle, pricing=pricing, faults=fault_profile
        )
        self.statistics = StatisticsManager()
        self.budget_ledger = BudgetLedger()
        self.task_cache = TaskCache(enabled=enable_cache, policy=cache_policy)
        self.task_models = TaskModelRegistry(enabled=enable_task_model)
        self.hit_compiler = HITCompiler()
        self.breaker = (
            MarketplaceCircuitBreaker(circuit_breaker, clock=self.clock)
            if circuit_breaker is not None
            else None
        )
        self.task_manager = TaskManager(
            self.platform,
            self.statistics,
            self.budget_ledger,
            cache=self.task_cache,
            models=self.task_models,
            compiler=self.hit_compiler,
            quality=quality,
            reputation=self.reputation,
            gold=self.gold_pool,
            breaker=self.breaker,
        )
        self.cost_model = CostModel(pricing)
        self.optimizer = QueryOptimizer(
            self.statistics,
            self.cost_model,
            optimizer_config,
            reputation=self.reputation,
            models=self.task_models,
        )
        self.replanner = AdaptiveReplanner(self.optimizer, self.statistics)
        self.scheduler = EngineScheduler(
            self.clock,
            self.task_manager,
            max_concurrent_queries=max_concurrent_queries,
            replanner=self.replanner,
            admission_queue_limit=admission_queue_limit,
            overload_policy=overload_policy,
            overload_retry_after=overload_retry_after,
        )
        self.registry = TaskRegistry()
        self.default_query_config = default_query_config or QueryConfig()
        self.queries: dict[str, QueryHandle] = {}
        # Plain int (not itertools.count) so recovery can restore it from a
        # snapshot and replayed queries get their original ids back.
        self._next_query_seq = 0
        # Durability is opt-in via enable_durability()/recover().
        self.durability: DurabilityConfig | None = None
        self.journal: EngineJournal | None = None
        # The durable answer tier is opt-in via attach_answer_tier().
        self.answer_tier = None
        # Outcomes (status + rows) of queries that finished before the
        # snapshot this engine was recovered from; their query_submitted
        # records were truncated out of the WAL, so these are the only
        # surviving account of them.
        self._recovered_outcomes: list[dict] = []

    # -- schema / data ------------------------------------------------------------------------

    def create_table(self, name: str, columns, *, rows=None):
        """Create a base table and optionally populate it."""
        table = self.database.create_table(name, columns)
        if rows:
            table.insert_many(rows)
        return table

    # -- crowd UDFs ----------------------------------------------------------------------------

    def define_task(
        self,
        definition: TaskSpec | str,
        *,
        payload=None,
        left_payload=None,
        right_payload=None,
        prefilter=None,
        learnable: bool = True,
    ) -> RegisteredTask:
        """Register a crowd UDF from a TASK definition (text or spec).

        ``payload`` / ``left_payload`` / ``right_payload`` map rows to what
        workers see; ``prefilter`` is a free machine predicate on join pairs.
        When the spec carries a feature extractor and ``learnable`` is True, a
        Task Model is attached so the optimizer can eventually replace the
        crowd with a classifier.
        """
        spec = parse_task(definition) if isinstance(definition, str) else definition
        entry = self.registry.register(
            spec,
            payload=payload,
            left_payload=left_payload,
            right_payload=right_payload,
            prefilter=prefilter,
            learnable=learnable,
        )
        if learnable and self.task_models.enabled:
            self.task_models.register_default(spec)
        return entry

    def register_oracle(self, task_name: str, oracle: AnswerOracle) -> None:
        """Attach the ground-truth oracle simulated workers use for one task."""
        self.oracle.register(task_name, oracle)

    def register_gold(self, task_name: str, questions: list[GoldQuestion]) -> None:
        """Attach gold-standard probe questions for one crowd UDF.

        With a :class:`~repro.crowd.quality.QualityConfig` active, the Task
        Manager injects one of these probes into a fraction of posted HITs
        (``gold_frequency``); workers' probe answers update their reputation
        posteriors.  Probe payloads must be answerable by the task's
        registered oracle — draw them from items whose ground truth the
        workload knows.
        """
        self.gold_pool.register(task_name, questions)

    def set_batching_policy(self, task_name: str, kind: TaskKind, policy: BatchingPolicy) -> None:
        """Override how tasks of one (task, kind) group are batched into HITs."""
        self.task_manager.set_batching_policy(task_name, kind, policy)

    # -- queries ----------------------------------------------------------------------------------

    def query(
        self,
        sql: str | SelectStatement,
        *,
        budget: float | None = None,
        config: QueryConfig | None = None,
        priority: float = 1.0,
    ) -> QueryHandle:
        """Parse, optimize and start a query; returns a pollable handle.

        The query is registered with the engine scheduler, so driving any
        handle (``step``/``run_until``/``wait``) progresses every concurrent
        query on this marketplace; ``priority`` weights this query's share of
        scheduler passes.
        """
        if self.journal is not None:
            # Replay re-submits the logged SQL text; anything that cannot
            # travel through the log verbatim would make recovery diverge.
            if not isinstance(sql, str):
                raise QurkError("a durable engine requires SQL text, not a pre-parsed statement")
            if config is not None:
                raise QurkError(
                    "a durable engine does not accept per-query config overrides; "
                    "set default_query_config on the engine instead"
                )
        statement = parse_select(sql) if isinstance(sql, str) else sql
        # Clone so per-query budget resolution never mutates the caller's (or
        # the engine's default) config, and new QueryConfig fields carry over.
        query_config = (config or self.default_query_config).clone()
        effective_budget = budget if budget is not None else statement.budget
        if effective_budget is None:
            effective_budget = query_config.budget
        query_config.budget = effective_budget

        self._next_query_seq += 1
        query_id = f"q{self._next_query_seq}"
        if self.journal is not None:
            # Submissions are the replay source, but they group-commit: the
            # WAL's append ordering plus the forced-durable record at drain
            # entry guarantee every submission is on disk before any of its
            # crowd effects happen, without paying an fsync per query().
            # Under fsync="always" the append is synced immediately anyway.
            self.journal.record(
                "query_submitted",
                {
                    "query_id": query_id,
                    "sql": sql,
                    "budget": effective_budget,
                    "priority": priority,
                },
            )
        self.budget_ledger.register(query_id, effective_budget)
        planner = QueryPlanner(self.database, self.registry, self.optimizer, config=query_config)
        planned = planner.plan(statement, query_id=query_id)
        context = ExecutionContext(
            query_id=query_id,
            database=self.database,
            task_manager=self.task_manager,
            statistics=self.statistics,
            budget=self.budget_ledger,
            clock=self.clock,
            config=query_config,
            optimizer=self.optimizer,
        )
        executor = QueryExecutor(planned.root, context)
        raw_sql = statement.raw_sql or (sql if isinstance(sql, str) else "")
        handle = QueryHandle(query_id, raw_sql, executor, planned.root.results_table)
        if planned.chosen is not None:
            self.replanner.record_initial(
                query_id, ", ".join(planned.chosen.decisions) or "default plan", self.clock.now
            )
        self.queries[query_id] = handle
        self.scheduler.submit(handle, priority=priority)
        return handle

    def run(self, sql: str | SelectStatement, **kwargs):
        """Convenience wrapper: start a query and wait for every result row."""
        return self.query(sql, **kwargs).wait()

    def estimate_query_cost(self, handle: QueryHandle) -> CostEstimate:
        """The optimizer's current cost estimate for a (possibly running) query."""
        return self.optimizer.estimate_plan_cost(handle.executor.root)

    def explain(self, sql: str | SelectStatement, *, config: QueryConfig | None = None) -> str:
        """EXPLAIN a query without running it (or paying for anything).

        Renders the logical plan with current cardinality estimates, every
        physical candidate the enumerator costed, and the chosen plan.  No
        results table is created and no task is submitted.
        """
        statement = parse_select(sql) if isinstance(sql, str) else sql
        planner = QueryPlanner(
            self.database,
            self.registry,
            self.optimizer,
            config=(config or self.default_query_config).clone(),
        )
        return planner.explain(statement)

    # -- durability --------------------------------------------------------------------------------

    def enable_durability(
        self,
        config: DurabilityConfig,
        *,
        spec: dict | None = None,
        _wal: WriteAheadLog | None = None,
    ) -> EngineJournal:
        """Start journalling every externally-visible event to a WAL.

        ``spec`` is an optional engine recipe (``{"factory", "kwargs"}``,
        the cluster :class:`~repro.cluster.worker.EngineSpec` payload
        shape) stored in the WAL header so :meth:`recover` can rebuild
        the engine without being told how.  Must be called before any
        query is submitted — the log must contain the engine's whole
        visible history.
        """
        if self.journal is not None:
            raise QurkError("durability is already enabled on this engine")
        if self._next_query_seq:
            raise QurkError("enable durability before submitting queries, not after")
        if _wal is not None:
            wal = _wal
        else:
            directory = Path(config.directory)
            directory.mkdir(parents=True, exist_ok=True)
            wal = WriteAheadLog.create(
                directory / "wal.log",
                spec=spec,
                fsync=config.fsync,
                fsync_every=config.fsync_every,
            )
        self.durability = config
        self.journal = EngineJournal(wal)
        self.budget_ledger.attach_journal(self.journal)
        self.task_manager.attach_journal(self.journal)
        self.scheduler.attach_journal(self.journal, checkpoint_hook=self._maybe_checkpoint)
        return self.journal

    def attach_answer_tier(
        self,
        directory: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 64,
    ):
        """Back the Task Cache with a durable answer tier at ``directory``.

        Opens (or creates) a :class:`~repro.storage.answer_tier.DurableAnswerTier`,
        warms the cache with every answer it holds, and mirrors all future
        admitted stores into its WAL — so cached answers survive restarts
        and can be shared by the next engine pointed at the same directory.
        The tier wants its own directory, separate from ``enable_durability``'s
        (their snapshot files would collide).

        Warming the cache changes which tasks reach the crowd, so attach a
        *non-empty* tier only when cross-run reuse is wanted; a fresh
        (empty) tier keeps the run byte-identical while recording answers.
        """
        from repro.storage.answer_tier import DurableAnswerTier

        if self.answer_tier is not None:
            raise QurkError("an answer tier is already attached to this engine")
        tier = DurableAnswerTier(directory, fsync=fsync, fsync_every=fsync_every)
        tier.load_into(self.task_cache)
        self.task_cache.attach_tier(tier)
        self.answer_tier = tier
        return tier

    def checkpoint(self) -> Path:
        """Snapshot the engine and truncate the WAL up to the snapshot LSN.

        Only legal at a quiescent point: open HITs live as closures on
        the clock's event heap and cannot be serialised, so the engine
        must have no pending events, no runnable queries and no
        outstanding crowd work.  (The scheduler calls this automatically
        at the end of a completed ``drain()`` when ``snapshot_every`` is
        configured.)
        """
        if self.journal is None:
            raise QurkError("checkpoint() requires durability; call enable_durability first")
        if (
            self.clock.pending_events
            or self.scheduler.has_work()
            or self.task_manager.has_outstanding_work()
        ):
            raise SnapshotError(
                "cannot snapshot a non-quiescent engine: "
                f"{self.clock.pending_events} clock events pending, "
                f"scheduler has_work={self.scheduler.has_work()}, "
                f"outstanding crowd work={self.task_manager.has_outstanding_work()}"
            )
        state = capture_engine_state(self)
        lsn = self.journal.wal.last_lsn
        path = write_snapshot(Path(self.durability.directory), state, lsn=lsn)
        self.journal.wal.truncate_to(lsn)
        self.journal.snapshot_taken()
        return path

    def _maybe_checkpoint(self) -> None:
        """Auto-checkpoint hook the scheduler fires after a completed drain."""
        if self.journal is None or self.journal.replaying or self.durability is None:
            return
        if not self.journal.snapshot_due(self.durability.snapshot_every):
            return
        if (
            self.clock.pending_events
            or self.scheduler.has_work()
            or self.task_manager.has_outstanding_work()
        ):
            return
        self.checkpoint()

    @classmethod
    def recover(
        cls,
        path: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 256,
        snapshot_every: int | None = 200,
        factory=None,
    ) -> RecoveryResult:
        """Rebuild an engine from a durability directory after a crash.

        Loads the newest readable snapshot, replays every logged query
        submitted after it, and returns a
        :class:`~repro.storage.durability.RecoveryResult` whose engine
        is byte-identical (per ``fingerprint_engine``) to an
        uninterrupted run — determinism does the heavy lifting.
        """
        return recover_engine(
            path,
            fsync=fsync,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
            factory=factory,
        )

    # -- simulation control ------------------------------------------------------------------------

    def advance_time(self, seconds: float) -> None:
        """Advance simulated time, letting outstanding HITs complete."""
        if seconds < 0:
            raise QurkError("cannot advance time backwards")
        self.clock.advance_by(seconds)

    @property
    def total_crowd_cost(self) -> float:
        """Total dollars paid to the (simulated) crowd across all queries."""
        return self.platform.total_cost
