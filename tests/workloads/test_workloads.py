"""Unit tests for the synthetic workload generators and their oracles."""

import pytest

from repro.crowd.hit import FormField, HITItem
from repro.errors import WorkloadError
from repro.storage import Database
from repro.workloads import (
    CelebrityWorkload,
    CompaniesWorkload,
    CompositeOracle,
    ImageGenerator,
    ProductsWorkload,
    payload_value,
)


class TestImages:
    def test_same_identity_images_are_closer_than_different(self):
        generator = ImageGenerator(noise=0.05, seed=1)
        a1 = generator.image_of(1, image_id="a1")
        a2 = generator.image_of(1, image_id="a2")
        b1 = generator.image_of(2, image_id="b1")
        assert a1.distance(a2) < a1.distance(b1)

    def test_prototypes_are_stable(self):
        generator = ImageGenerator(seed=2)
        assert generator.prototype(3) == generator.prototype(3)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ImageGenerator(dimensions=0)
        with pytest.raises(WorkloadError):
            ImageGenerator(noise=-1)

    def test_distance_requires_same_dimensions(self):
        a = ImageGenerator(dimensions=3, seed=1).image_of(0, image_id="a")
        b = ImageGenerator(dimensions=4, seed=1).image_of(0, image_id="b")
        with pytest.raises(WorkloadError):
            a.distance(b)


class TestPayloadValue:
    def test_lookup_order(self):
        payload = {"name": "top", "row": {"products.name": "nested", "other": 1}}
        assert payload_value(payload, "name") == "top"
        assert payload_value({"row": {"products.name": "nested"}}, "name") == "nested"
        assert payload_value({"celebrities.image": "img"}, "image") == "img"
        assert payload_value({}, "missing", default="d") == "d"


class TestCompaniesWorkload:
    def test_deterministic_and_consistent_with_directory(self):
        a = CompaniesWorkload(n_companies=15, seed=3)
        b = CompaniesWorkload(n_companies=15, seed=3)
        assert [r.name for r in a.records] == [r.name for r in b.records]
        table = a.build_table()
        assert len(table) == 15
        directory = a.directory()
        assert all(row["companyName"] in directory for row in table)

    def test_oracle_answers_and_wrong_answers(self):
        workload = CompaniesWorkload(n_companies=5, seed=4)
        oracle = workload.oracle()
        record = workload.records[0]
        item = HITItem("i", record.name, {"companyName": record.name})
        assert oracle.form_answer(item, FormField("CEO")) == record.ceo
        assert oracle.form_answer(item, FormField("Phone")) == record.phone
        wrong = oracle.plausible_wrong_form_answer(item, FormField("CEO"))
        assert isinstance(wrong, str) and wrong
        with pytest.raises(WorkloadError):
            oracle.form_answer(HITItem("j", "x", {"companyName": "Unknown Co"}), FormField("CEO"))

    def test_score_results(self):
        from repro.storage import Column

        workload = CompaniesWorkload(n_companies=4, seed=5)
        table = workload.build_table()
        rows = [
            row.extended([Column("ceo")], [workload.directory()[row["companyName"]].ceo])
            for row in table
        ]
        assert workload.score_results(rows, company_column="companyName", ceo_column="ceo") == 1.0

    def test_install_registers_table(self):
        database = Database()
        CompaniesWorkload(n_companies=3, seed=6).install(database)
        assert database.has_table("companies")

    def test_findceo_spec_matches_paper(self):
        spec = CompaniesWorkload(n_companies=2, seed=1).findceo_spec()
        assert spec.name == "findCEO"
        assert spec.return_field_names == ("CEO", "Phone")
        assert "%s" in spec.text


class TestCelebrityWorkload:
    def test_match_relation_and_cross_product(self):
        workload = CelebrityWorkload(n_celebrities=10, n_spotted=12, match_fraction=0.5, seed=7)
        matches = workload.true_matches()
        assert workload.cross_product_size() == 120
        assert 0 < len(matches) <= 12
        celebs, spotted = workload.build_tables()
        assert len(celebs) == 10 and len(spotted) == 12

    def test_oracle_matches_identity(self):
        workload = CelebrityWorkload(n_celebrities=4, n_spotted=4, match_fraction=1.0, seed=8)
        oracle = workload.oracle()
        celeb_name, celeb_image = workload.celebrity_images[0]
        matching = [img for _sid, img in workload.spotted_images if img.identity == celeb_image.identity]
        left = HITItem("L", celeb_name, {"image": celeb_image})
        if matching:
            right = HITItem("R", "spotted", {"image": matching[0]})
            assert oracle.pair_matches(left, right)
        other = HITItem("R2", "spotted", {"image": workload.celebrity_images[1][1]})
        assert not oracle.pair_matches(left, other)

    def test_prefilter_keeps_true_pairs(self):
        workload = CelebrityWorkload(n_celebrities=8, n_spotted=8, seed=9, feature_noise=0.05)
        prefilter = workload.feature_prefilter(0.6)
        celebs, spotted = workload.build_tables()
        truth = workload.true_matches()
        for celeb_row in celebs:
            for spotted_row in spotted:
                if (celeb_row["name"], spotted_row["id"]) in truth:
                    assert prefilter(celeb_row, spotted_row)

    def test_score_results_on_empty_output(self):
        workload = CelebrityWorkload(n_celebrities=3, n_spotted=3, seed=10)
        score = workload.score_results([])
        assert score["precision"] == 1.0
        assert score["recall"] in (0.0, 1.0)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            CelebrityWorkload(n_celebrities=0)
        with pytest.raises(WorkloadError):
            CelebrityWorkload(match_fraction=1.5)
        with pytest.raises(WorkloadError):
            CelebrityWorkload().sameperson_spec(interface="triangles")


class TestProductsWorkload:
    def test_target_fraction_roughly_respected(self):
        workload = ProductsWorkload(n_products=200, target_fraction=0.3, seed=11)
        fraction = len(workload.true_target_names()) / 200
        assert 0.2 < fraction < 0.4

    def test_oracle_judgements(self):
        workload = ProductsWorkload(n_products=10, seed=12)
        oracle = workload.oracle()
        record = workload.records[0]
        item = HITItem("i", record.name, {"name": record.name})
        assert oracle.predicate_answer(item) == (record.color == workload.target_color)
        big, small = sorted(workload.records[:2], key=lambda r: -r.size)
        comparison = HITItem("c", "cmp", {"left": {"name": big.name}, "right": {"name": small.name}})
        assert oracle.comparison_answer(comparison) == "left"
        rating = oracle.rating_answer(HITItem("r", "rate", {"name": record.name}))
        assert 1.0 <= rating <= 7.0

    def test_rank_correlation_bounds(self):
        workload = ProductsWorkload(n_products=10, seed=13)
        order = workload.true_size_order()
        assert workload.rank_correlation(order, order) == pytest.approx(1.0)
        assert workload.rank_correlation(order, list(reversed(order))) == pytest.approx(-1.0)
        assert workload.rank_correlation(order, order[:-1] + ["bogus"]) == 0.0

    def test_filter_accuracy_scoring(self):
        workload = ProductsWorkload(n_products=10, seed=14)
        table = workload.build_table()
        target = workload.true_target_names()
        rows = [row for row in table if row["name"] in target]
        result = workload.filter_accuracy(rows, name_column="name")
        assert result["precision"] == 1.0 and result["recall"] == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ProductsWorkload(n_products=0)
        with pytest.raises(WorkloadError):
            ProductsWorkload(target_fraction=0.0)


class TestCompositeOracle:
    def test_dispatch_by_task_tag(self):
        products = ProductsWorkload(n_products=5, seed=15)
        companies = CompaniesWorkload(n_companies=5, seed=15)
        oracle = CompositeOracle(
            {"isTargetColor": products.oracle(), "findCEO": companies.oracle()}
        )
        record = products.records[0]
        item = HITItem("i", record.name, {"_task": "isTargetColor", "name": record.name})
        assert isinstance(oracle.predicate_answer(item), bool)
        company = companies.records[0]
        form_item = HITItem("j", company.name, {"_task": "findCEO", "companyName": company.name})
        assert oracle.form_answer(form_item, FormField("CEO")) == company.ceo

    def test_missing_oracle_raises(self):
        oracle = CompositeOracle({})
        with pytest.raises(WorkloadError):
            oracle.predicate_answer(HITItem("i", "x", {"_task": "unknown"}))

    def test_default_oracle_used_when_untagged(self):
        products = ProductsWorkload(n_products=3, seed=16)
        oracle = CompositeOracle({}, default=products.oracle())
        record = products.records[0]
        assert isinstance(
            oracle.predicate_answer(HITItem("i", record.name, {"name": record.name})), bool
        )
