"""Integration tests: the whole system driven through the QurkEngine facade.

These exercise the paper's two demo queries end to end (parser → optimizer →
executor → task manager → HIT compiler → simulated MTurk → results table),
plus the cross-query caching, budgets, polling, the dashboard and the task
completion interface.
"""

import pytest

from repro import QueryConfig, QueryStatus, QurkEngine
from repro.core.exec.handle import QueryHandle
from repro.dashboard import QueryDashboard
from repro.errors import CatalogError
from repro.experiments import QUERY1_SQL, QUERY2_SQL
from repro.ui import TaskCompletionInterface
from repro.workloads import CelebrityWorkload, CompaniesWorkload, ProductsWorkload


@pytest.fixture
def companies_engine():
    workload = CompaniesWorkload(n_companies=10, seed=5)
    engine = QurkEngine(seed=5)
    workload.install(engine.database)
    engine.register_oracle("findCEO", workload.oracle())
    engine.define_task(workload.findceo_spec())
    return engine, workload


@pytest.fixture
def celebrity_engine():
    workload = CelebrityWorkload(n_celebrities=8, n_spotted=8, seed=6)
    engine = QurkEngine(seed=6, default_query_config=QueryConfig(adaptive=False))
    workload.install(engine.database)
    engine.register_oracle("samePerson", workload.oracle())
    engine.define_task(
        workload.sameperson_spec(assignments=5),
        left_payload=workload.left_payload,
        right_payload=workload.right_payload,
    )
    return engine, workload


class TestQuery1:
    def test_schema_extension_query(self, companies_engine):
        engine, workload = companies_engine
        handle = engine.query(QUERY1_SQL)
        rows = handle.wait()
        assert handle.status is QueryStatus.COMPLETED
        assert len(rows) == 10
        assert rows[0].schema.names == ("companyName", "findCEO.CEO", "findCEO.Phone")
        accuracy = workload.score_results(
            rows, company_column="companyName", ceo_column="findCEO.CEO"
        )
        assert accuracy >= 0.9
        assert handle.total_cost > 0

    def test_rerunning_the_query_is_free_thanks_to_the_cache(self, companies_engine):
        engine, _workload = companies_engine
        first = engine.query(QUERY1_SQL)
        first.wait()
        second = engine.query("SELECT companyName, findCEO(companyName).CEO FROM companies")
        second.wait()
        assert second.total_cost == 0.0
        assert second.stats.cache_hits == 10
        assert second.stats.dollars_saved_cache > 0

    def test_polling_interface_sees_results_incrementally(self, companies_engine):
        engine, _workload = companies_engine
        handle = engine.query(QUERY1_SQL)
        seen = 0
        for _ in range(100_000):
            seen += len(handle.poll())
            if not handle.step():
                break
        seen += len(handle.poll())
        assert seen == 10
        assert handle.poll() == []


class TestQuery2:
    def test_celebrity_join(self, celebrity_engine):
        engine, workload = celebrity_engine
        handle = engine.query(QUERY2_SQL)
        rows = handle.wait()
        score = workload.score_results(rows)
        assert score["precision"] >= 0.9
        assert score["recall"] >= 0.9
        # The two-column interface needs far fewer HITs than the cross product.
        assert handle.stats.hits_posted < workload.cross_product_size()

    def test_budget_stops_an_expensive_query(self, celebrity_engine):
        engine, _workload = celebrity_engine
        handle = engine.query(QUERY2_SQL, budget=0.05)
        handle.wait()
        assert handle.status is QueryStatus.BUDGET_EXCEEDED
        assert handle.error is not None
        assert handle.stats.spent <= 0.05 + 1e-9

    def test_budget_from_sql_clause(self, celebrity_engine):
        engine, _workload = celebrity_engine
        handle = engine.query(QUERY2_SQL + " BUDGET 0.05")
        handle.wait()
        assert handle.status is QueryStatus.BUDGET_EXCEEDED


class TestMixedQueries:
    def test_filter_sort_limit_pipeline(self):
        workload = ProductsWorkload(n_products=18, seed=7)
        engine = QurkEngine(seed=7)
        workload.install(engine.database)
        oracle = workload.oracle()
        engine.register_oracle("isTargetColor", oracle)
        engine.register_oracle("rateSize", oracle)
        engine.define_task(workload.color_filter_spec())
        engine.define_task(
            workload.size_rating_spec(batch_size=5), payload=lambda row: {"name": row["name"]}
        )
        handle = engine.query(
            "SELECT name, price FROM products "
            "WHERE isTargetColor(name) AND price < 1000 "
            "ORDER BY rateSize(name) LIMIT 4"
        )
        rows = handle.wait()
        assert 0 < len(rows) <= 4
        reported = {row["name"] for row in rows}
        assert reported <= workload.true_target_names()

    def test_group_by_runs_locally_without_crowd_cost(self):
        workload = ProductsWorkload(n_products=18, seed=8)
        engine = QurkEngine(seed=8)
        workload.install(engine.database)
        handle = engine.query("SELECT category, count(name) AS n FROM products GROUP BY category")
        rows = handle.wait()
        assert sum(row["n"] for row in rows) == 18
        assert handle.total_cost == 0.0

    def test_unknown_table_raises(self):
        engine = QurkEngine()
        with pytest.raises(CatalogError):
            engine.query("SELECT a FROM missing")

    def test_engine_create_table_and_rows(self):
        engine = QurkEngine()
        engine.create_table("notes", ["id", "text"], rows=[[1, "a"], [2, "b"]])
        rows = engine.run("SELECT id, text FROM notes")
        assert len(rows) == 2

    def test_queries_get_distinct_ids_and_handles_are_tracked(self, companies_engine):
        engine, _workload = companies_engine
        first = engine.query(QUERY1_SQL)
        second = engine.query(QUERY1_SQL)
        assert first.query_id != second.query_id
        assert set(engine.queries) >= {first.query_id, second.query_id}
        assert isinstance(engine.queries[first.query_id], QueryHandle)


class TestAdaptiveRedundancy:
    def test_adaptive_queries_use_fewer_assignments_with_reliable_workers(self):
        from repro.crowd import PopulationMix

        workload = CompaniesWorkload(n_companies=12, seed=9)
        engine = QurkEngine(
            seed=9,
            population_mix=PopulationMix(diligent=1, noisy=0, lazy=0, spammer=0),
            default_query_config=QueryConfig(adaptive=True),
        )
        workload.install(engine.database)
        engine.register_oracle("findCEO", workload.oracle())
        engine.define_task(workload.findceo_spec(assignments=5))
        warmup = engine.query(QUERY1_SQL)
        warmup.wait()
        # After observing near-perfect agreement the optimizer should drop to 1 assignment.
        assert engine.optimizer.choose_assignments(engine.registry.require("findCEO").spec) == 1


class TestDashboardAndTaskInterface:
    def test_dashboard_reports_budget_cost_and_savings(self, companies_engine):
        engine, _workload = companies_engine
        handle = engine.query(QUERY1_SQL, budget=5.0)
        handle.wait()
        dashboard = QueryDashboard(engine)
        snapshot = dashboard.snapshot(handle.query_id)
        assert snapshot.budget == pytest.approx(5.0)
        assert snapshot.spent > 0
        assert snapshot.hits_posted == handle.stats.hits_posted
        text = dashboard.render(handle.query_id)
        assert "budget" in text and "savings" in text and "plan:" in text
        assert handle.query_id in dashboard.render_all()

    def test_dashboard_unknown_query(self, companies_engine):
        engine, _workload = companies_engine
        from repro.errors import DashboardError

        with pytest.raises(DashboardError):
            QueryDashboard(engine).snapshot("nope")

    def test_audience_member_can_complete_a_hit(self, companies_engine):
        engine, workload = companies_engine
        handle = engine.query(QUERY1_SQL)
        # Step just far enough for HITs to be posted but not completed.
        while not engine.platform.open_hits():
            handle.step()
        interface = TaskCompletionInterface(engine.platform, participant_id="audience-1")
        open_hits = interface.open_hits()
        assert open_hits
        hit = open_hits[0]
        description = interface.describe_hit(hit.hit_id)
        assert "CEO" in description
        html = interface.render_hit(hit.hit_id)
        assert html.startswith("<form")
        directory = workload.directory()
        answers = {}
        for item in hit.content.items:
            company = item.payload.get("companyName")
            record = directory[company]
            answers[item.item_id] = {"CEO": record.ceo, "Phone": record.phone}
        assignment = interface.submit_answers(hit.hit_id, answers)
        assert assignment.worker_id == "audience-1"
        rows = handle.wait()
        assert len(rows) == 10
