"""WAL unit tests: framing, fsync semantics, torn tails, truncation."""

import pytest

from repro.errors import WALCorruptionError, WALError
from repro.storage.wal import WALRecord, WriteAheadLog
from repro.testing.crashpoints import corrupt_tail


def _fill(wal, n, *, start=1):
    for i in range(start, start + n):
        wal.append("event", {"i": i})


class TestFramingRoundTrip:
    def test_create_append_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, spec={"factory": "m:f", "kwargs": {"x": 1}})
        lsns = [wal.append("event", {"i": i, "pair": [1, 2]}) for i in range(5)]
        wal.close()
        assert lsns == [1, 2, 3, 4, 5]

        info, _ = WriteAheadLog.scan(path)
        assert info.base_lsn == 0
        assert info.spec == {"factory": "m:f", "kwargs": {"x": 1}}
        assert info.corruption is None
        assert info.truncated_bytes == 0
        assert info.records == [
            WALRecord(lsn=i + 1, type="event", data={"i": i, "pair": [1, 2]})
            for i in range(5)
        ]

    def test_reopen_appends_continue_lsn_sequence(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog.create(path) as wal:
            _fill(wal, 3)
        wal, info = WriteAheadLog.open(path)
        assert info.last_lsn == 3
        assert wal.append("event", {"i": 99}) == 4
        wal.close()
        info, _ = WriteAheadLog.scan(path)
        assert [record.lsn for record in info.records] == [1, 2, 3, 4]

    def test_non_json_payload_rejected(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal.log")
        with pytest.raises(WALError):
            wal.append("event", {"bad": object()})
        wal.close()

    def test_header_type_reserved(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal.log")
        with pytest.raises(WALError):
            wal.append("header", {})
        wal.close()


class TestFsyncPolicies:
    def test_always_never_buffers(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal.log", fsync="always")
        _fill(wal, 10)
        assert wal.unflushed_records == 0
        wal.close()

    def test_interval_buffers_up_to_window(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal.log", fsync="interval", fsync_every=4)
        _fill(wal, 3)
        assert wal.unflushed_records == 3
        _fill(wal, 1, start=4)
        assert wal.unflushed_records == 0
        wal.close()

    def test_off_buffers_until_close(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal.log", fsync="off")
        _fill(wal, 50)
        assert wal.unflushed_records == 50
        wal.close()
        info, _ = WriteAheadLog.scan(tmp_path / "wal.log")
        assert len(info.records) == 50

    def test_durable_flag_flushes_under_every_policy(self, tmp_path):
        for policy in ("always", "interval", "off"):
            path = tmp_path / f"{policy}.log"
            wal = WriteAheadLog.create(path, fsync=policy)
            wal.append("event", {"i": 1})
            wal.append("query_submitted", {"sql": "..."}, durable=True)
            # The durable append drags the whole buffered prefix to disk.
            assert wal.unflushed_records == 0
            wal.close()

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(WALError):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")


class TestCrashSemantics:
    def test_simulated_crash_loses_exactly_the_unflushed_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, fsync="interval", fsync_every=4)
        _fill(wal, 10)  # 8 flushed, 2 buffered
        assert wal.unflushed_records == 2
        wal.simulate_crash()
        info, _ = WriteAheadLog.scan(path)
        assert [record.lsn for record in info.records] == list(range(1, 9))
        assert info.corruption is None  # a lost tail is not corruption

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal.log")
        wal.simulate_crash()
        with pytest.raises(WALError):
            wal.append("event", {})


class TestCorruption:
    def _written(self, tmp_path, n=6):
        path = tmp_path / "wal.log"
        with WriteAheadLog.create(path, fsync="always") as wal:
            _fill(wal, n)
        return path

    def test_torn_tail_truncates_to_last_valid_record(self, tmp_path):
        path = self._written(tmp_path)
        corrupt_tail(path, mode="truncate", seed=1)
        wal, info = WriteAheadLog.open(path)
        assert info.corruption is not None
        assert info.truncated_bytes > 0
        assert [record.lsn for record in info.records] == [1, 2, 3, 4, 5]
        # The file itself was cleanly truncated: appending resumes at LSN 6.
        assert wal.append("event", {"i": 6}) == 6
        wal.close()
        rescan, _ = WriteAheadLog.scan(path)
        assert rescan.corruption is None
        assert [record.lsn for record in rescan.records] == [1, 2, 3, 4, 5, 6]

    def test_bitflip_detected_by_crc(self, tmp_path):
        path = self._written(tmp_path)
        corrupt_tail(path, mode="bitflip", seed=2)
        info, _ = WriteAheadLog.scan(path)
        assert info.corruption is not None and "CRC" in info.corruption
        assert [record.lsn for record in info.records] == [1, 2, 3, 4, 5]

    def test_lsn_gap_detected(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog.create(path, fsync="always") as wal:
            _fill(wal, 2)
            wal._last_lsn += 5  # skip ahead: next record's LSN is discontinuous
            _fill(wal, 1, start=3)
        info, _ = WriteAheadLog.scan(path)
        assert info.corruption is not None and "LSN gap" in info.corruption
        assert [record.lsn for record in info.records] == [1, 2]

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        with pytest.raises(WALCorruptionError):
            WriteAheadLog.scan(path)
        path.write_bytes(b"garbage that is not a frame at all........")
        with pytest.raises(WALCorruptionError):
            WriteAheadLog.scan(path)


class TestTruncateTo:
    def test_truncate_rewrites_base_and_keeps_suffix(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, fsync="always", spec={"factory": "m:f"})
        _fill(wal, 10)
        wal.truncate_to(7)
        assert wal.base_lsn == 7
        assert wal.append("event", {"i": 11}) == 11
        wal.close()
        info, _ = WriteAheadLog.scan(path)
        assert info.base_lsn == 7
        assert info.spec == {"factory": "m:f"}  # spec survives truncation
        assert [record.lsn for record in info.records] == [8, 9, 10, 11]

    def test_truncate_outside_range_rejected(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal.log", fsync="always")
        _fill(wal, 3)
        with pytest.raises(WALError):
            wal.truncate_to(4)
        with pytest.raises(WALError):
            wal.truncate_to(-1)
        wal.close()
