"""Unit tests for CSV import/export."""

import pytest

from repro.errors import StorageError
from repro.storage import DataType, Schema, Table, dump_csv, dumps_csv, load_csv, loads_csv


@pytest.fixture
def schema():
    return Schema.of(
        ("name", DataType.STRING),
        ("employees", DataType.INTEGER),
        ("revenue", DataType.FLOAT),
        ("public", DataType.BOOLEAN),
    )


CSV_TEXT = "name,employees,revenue,public\nAcme,10,1.5,true\nGlobex,,2.0,false\n"


class TestLoad:
    def test_loads_with_header(self, schema):
        table = loads_csv("companies", schema, CSV_TEXT)
        assert len(table) == 2
        first = table.rows()[0]
        assert first["employees"] == 10
        assert first["public"] is True

    def test_empty_cell_becomes_null(self, schema):
        table = loads_csv("companies", schema, CSV_TEXT)
        assert table.rows()[1]["employees"] is None

    def test_bad_integer_raises(self, schema):
        with pytest.raises(StorageError):
            loads_csv("companies", schema, "name,employees,revenue,public\nAcme,xx,1.0,true\n")

    def test_wrong_field_count_raises(self, schema):
        with pytest.raises(StorageError, match="line"):
            loads_csv("companies", schema, "name,employees,revenue,public\nAcme,1\n")

    def test_header_width_mismatch_raises(self, schema):
        with pytest.raises(StorageError, match="header"):
            loads_csv("companies", schema, "just,two\n")

    def test_load_from_disk_roundtrip(self, schema, tmp_path):
        table = loads_csv("companies", schema, CSV_TEXT)
        path = tmp_path / "companies.csv"
        dump_csv(table, path)
        reloaded = load_csv("companies", schema, path)
        assert len(reloaded) == len(table)
        assert reloaded.rows()[0]["name"] == "Acme"


class TestDump:
    def test_dumps_includes_header_and_nulls(self, schema):
        table = loads_csv("companies", schema, CSV_TEXT)
        text = dumps_csv(table)
        lines = text.strip().splitlines()
        assert lines[0] == "name,employees,revenue,public"
        assert lines[2].startswith("Globex,,")

    def test_image_columns_cannot_be_dumped(self):
        table = Table("t", Schema.of(("img", DataType.IMAGE),))
        table.insert([object()])
        with pytest.raises(StorageError):
            dumps_csv(table)
