"""Unit tests for the Row value type."""

import pytest

from repro.errors import SchemaError
from repro.storage import Column, DataType, Row, Schema


@pytest.fixture
def schema():
    return Schema.of(
        ("companies.name", DataType.STRING),
        ("companies.employees", DataType.INTEGER),
    )


class TestRowConstruction:
    def test_positional_construction(self, schema):
        row = Row(schema, ["Acme", 100])
        assert row["name"] == "Acme"
        assert row[1] == 100

    def test_wrong_arity_rejected(self, schema):
        with pytest.raises(SchemaError):
            Row(schema, ["Acme"])

    def test_from_mapping_uses_unqualified_names(self, schema):
        row = Row.from_mapping(schema, {"name": "Acme", "employees": 5})
        assert row["companies.name"] == "Acme"

    def test_from_mapping_missing_columns_become_null(self, schema):
        row = Row.from_mapping(schema, {"name": "Acme"})
        assert row["employees"] is None

    def test_from_mapping_unknown_column_rejected(self, schema):
        with pytest.raises(SchemaError, match="unknown columns"):
            Row.from_mapping(schema, {"name": "Acme", "bogus": 1})

    def test_type_validation_happens_on_construction(self, schema):
        with pytest.raises(Exception):
            Row(schema, ["Acme", "not an int"])


class TestRowAccess:
    def test_get_with_default(self, schema):
        row = Row(schema, ["Acme", 1])
        assert row.get("missing", 42) == 42
        assert row.get("name") == "Acme"

    def test_to_dict(self, schema):
        row = Row(schema, ["Acme", 1])
        assert row.to_dict() == {"companies.name": "Acme", "companies.employees": 1}

    def test_iteration_and_len(self, schema):
        row = Row(schema, ["Acme", 1])
        assert list(row) == ["Acme", 1]
        assert len(row) == 2


class TestRowDerivation:
    def test_project(self, schema):
        row = Row(schema, ["Acme", 1]).project(["employees"])
        assert row.values == (1,)
        assert row.schema.names == ("companies.employees",)

    def test_concat(self, schema):
        other_schema = Schema.of(("spotted.id", DataType.INTEGER),)
        left = Row(schema, ["Acme", 1])
        right = Row(other_schema, [7])
        joined = left.concat(right)
        assert joined.values == ("Acme", 1, 7)
        assert len(joined.schema) == 3

    def test_extended_adds_columns(self, schema):
        row = Row(schema, ["Acme", 1]).extended(
            [Column("ceo", DataType.STRING), Column("phone", DataType.STRING)],
            ["Jane Doe", "555-0100"],
        )
        assert row["ceo"] == "Jane Doe"
        assert len(row) == 4

    def test_replaced(self, schema):
        row = Row(schema, ["Acme", 1]).replaced("employees", 9)
        assert row["employees"] == 9

    def test_rows_are_immutable_value_objects(self, schema):
        row = Row(schema, ["Acme", 1])
        same = Row(schema, ["Acme", 1])
        different = Row(schema, ["Acme", 2])
        assert row == same
        assert row != different
        with pytest.raises(AttributeError):
            row.new_attribute = 1  # __slots__ prevents accidental mutation

    def test_hash_for_hashable_payloads(self, schema):
        row = Row(schema, ["Acme", 1])
        assert hash(row) == hash(Row(schema, ["Acme", 1]))

    def test_hash_fallback_for_unhashable_payloads(self):
        schema = Schema.of(("answers", DataType.ANSWER_LIST),)
        row = Row(schema, [[1, 2, 3]])
        assert isinstance(hash(row), int)
