"""Property tests: column kernels and accel paths ≡ the per-row reference.

The columnar data plane rests on three equivalence claims, each pinned here
with hypothesis:

1. :func:`compile_batch_expression` produces, for every expression the
   workloads use (comparisons over every operator, arithmetic, boolean
   combinations, string equality), exactly the values the per-row
   :func:`compile_expression` callable produces — bit-identical, including
   NULL propagation, mixed int/float comparisons (beyond 2**53, where a
   float64 round-trip would lie), and the :class:`ExpressionError` raised for
   type failures.
2. The numpy fast paths (`_comparison_mask` selection vectors,
   :func:`repro.storage.accel.array_kernel`, and the accel sort / hash-join /
   group-by finishers) agree with the pure-Python plane they shadow; batches
   are built through :class:`Table` at accel size (≥256 rows) so dictionary
   codes and cached numeric arrays are actually exercised.
3. An index scan returns exactly the rows scan-then-filter returns, over all
   the workload base tables (companies, products, celebrities, spottedstars)
   and both index kinds.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators.scan import IndexScanOperator, ScanOperator
from repro.core.operators.project import _comparison_mask
from repro.errors import ExpressionError
from repro.storage import DataType, Schema, Table, accel
from repro.storage.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    compile_batch_expression,
    compile_batch_predicate,
    compile_expression,
)
from repro.workloads import CelebrityWorkload, CompaniesWorkload, ProductsWorkload

#: Minimum batch length at which every accel fast path engages.
ACCEL_ROWS = 277

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")
WORDS = ("red", "green", "blue", "", "café", "zz")

SCHEMA = Schema.of(
    ("a", DataType.ANY),  # ints (incl. beyond 2**53), bools, NULLs
    ("b", DataType.ANY),  # floats mixed with ints, NULLs
    ("s", DataType.STRING),  # dictionary-encoded at insert
    ("t", DataType.STRING),
)

# -- value and expression strategies -----------------------------------------

ints = st.integers(-50, 50)
big_ints = st.integers(-(2**60), 2**60)  # exact in Python, lossy as float64
floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
a_values = st.one_of(ints, big_ints, st.booleans(), st.none())
b_values = st.one_of(floats, ints, st.none())
s_values = st.one_of(st.sampled_from(WORDS), st.none())


def rows_strategy():
    return st.lists(
        st.tuples(a_values, b_values, s_values, s_values), min_size=1, max_size=12
    )


def numeric_column():
    return st.sampled_from(("a", "b")).map(ColumnRef)


numeric_leaf = st.one_of(
    numeric_column(),
    ints.map(Literal),
    floats.map(Literal),
)
numeric_expression = st.recursive(
    numeric_leaf,
    lambda child: st.tuples(st.sampled_from("+-*/"), child, child).map(
        lambda t: Arithmetic(*t)
    ),
    max_leaves=5,
)

string_operand = st.one_of(
    st.sampled_from(("s", "t")).map(ColumnRef),
    st.sampled_from(WORDS + ("missing",)).map(Literal),
)

comparison = st.one_of(
    st.tuples(st.sampled_from(COMPARISON_OPS), numeric_expression, numeric_expression),
    st.tuples(st.sampled_from(COMPARISON_OPS), string_operand, string_operand),
    # Mixed-type comparisons: `=` / `!=` are legal (always unequal), ordering
    # raises ExpressionError — both paths must agree either way.
    st.tuples(st.sampled_from(("=", "!=", "<")), numeric_expression, string_operand),
).map(lambda t: Comparison(*t))

predicate = st.recursive(
    comparison,
    lambda child: st.one_of(
        st.tuples(st.sampled_from(("and", "or")), child, child).map(
            lambda t: BooleanOp(*t)
        ),
        child.map(Not),
    ),
    max_leaves=4,
)

any_expression = st.one_of(numeric_expression, predicate)


def build_batch(rows):
    """Tile ``rows`` to accel size through a Table so codes/arrays exist."""
    table = Table("t", SCHEMA)
    table.insert_many(rows[i % len(rows)] for i in range(ACCEL_ROWS))
    return table.to_batch()


def identical(x, y) -> bool:
    """Bit-identical scalars: same type, same repr (exact for floats)."""
    return type(x) is type(y) and repr(x) == repr(y)


def per_row_reference(expression, batch):
    """(values, error_message) from the per-row compiled path."""
    compiled = compile_expression(expression, batch.schema)
    values = []
    try:
        for row in batch.to_rows():
            values.append(compiled(row))
    except ExpressionError as error:
        return None, str(error)
    return values, None


# -- 1. kernel ≡ per-row -----------------------------------------------------


class TestKernelEquivalence:
    @given(rows_strategy(), any_expression)
    @settings(max_examples=120, deadline=None)
    def test_batch_kernel_matches_per_row_bit_identically(self, rows, expression):
        batch = build_batch(rows)
        expected, error = per_row_reference(expression, batch)
        kernel = compile_batch_expression(expression, batch.schema)
        if error is not None:
            try:
                list(kernel(batch))
            except ExpressionError as raised:
                assert str(raised) == error
            else:
                raise AssertionError(f"kernel did not raise: {error}")
            return
        got = list(kernel(batch))
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert identical(g, e), f"{g!r} != {e!r} for {expression}"

    @given(rows_strategy(), predicate)
    @settings(max_examples=80, deadline=None)
    def test_predicate_kernel_selects_strict_true_rows(self, rows, predicate_expr):
        batch = build_batch(rows)
        expected, error = per_row_reference(predicate_expr, batch)
        kernel = compile_batch_predicate(predicate_expr, batch.schema)
        if error is not None:
            return  # raising predicates covered by the expression test above
        survivors = batch.compress(kernel(batch))
        wanted = [v for v, keep in zip(batch.to_rows(), expected) if keep is True]
        assert [r.values for r in survivors.to_rows()] == [r.values for r in wanted]


# -- 2. accel fast paths ≡ the Python plane ----------------------------------

literal_values = st.one_of(
    ints, big_ints, floats, st.booleans(), st.sampled_from(WORDS + ("missing",)), st.none()
)


class TestAccelPaths:
    @given(
        rows_strategy(),
        st.sampled_from(COMPARISON_OPS),
        st.sampled_from(("a", "b", "s", "t")),
        literal_values,
        st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_comparison_mask_matches_strict_filter(self, rows, op, column, value, flip):
        """The LocalFilterOperator fork: mask path and kernel path agree."""
        if flip:
            predicate_expr = Comparison(op, Literal(value), ColumnRef(column))
        else:
            predicate_expr = Comparison(op, ColumnRef(column), Literal(value))
        batch = build_batch(rows)
        expected, error = per_row_reference(predicate_expr, batch)
        mask = _comparison_mask(batch, predicate_expr)
        if mask is None:
            if error is not None:
                return
            survivors = batch.compress(
                compile_batch_predicate(predicate_expr, batch.schema)(batch)
            )
        else:
            assert error is None  # the mask path only claims comparable columns
            survivors = batch._compress_array(mask)
        wanted = [r for r, keep in zip(batch.to_rows(), expected or []) if keep is True]
        assert [r.values for r in survivors.to_rows()] == [r.values for r in wanted]

    @given(rows_strategy(), numeric_expression)
    @settings(max_examples=100, deadline=None)
    def test_array_kernel_matches_per_row(self, rows, expression):
        if not accel.HAVE_NUMPY:
            return
        batch = build_batch(rows)
        array = accel.array_kernel(expression, batch)
        if array is None:
            return  # ineligible shapes fall back; covered by the kernel test
        expected, error = per_row_reference(expression, batch)
        assert error is None
        assert len(array) == len(expected)
        # The array may carry ints where per-row carries bools (False == 0
        # exactly, and every consumer — masks, sort orders, float-only sums —
        # treats them identically); floats must still match bit for bit.
        for g, e in zip(array.tolist(), expected):
            assert g == e, f"{g!r} != {e!r} for {expression}"
            if isinstance(e, float):
                assert identical(g, e), f"{g!r} != {e!r} for {expression}"

    @given(st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_local_pipeline_identical_with_accel_disabled(self, seed):
        """filter → join → sort → group-by: accel plane ≡ pure-Python plane."""
        if not accel.HAVE_NUMPY:
            return
        accelerated = _run_local_pipeline(seed)
        saved = accel.HAVE_NUMPY
        accel.HAVE_NUMPY = False
        try:
            plain = _run_local_pipeline(seed)
        finally:
            accel.HAVE_NUMPY = saved
        assert len(accelerated) == len(plain)
        for left, right in zip(accelerated, plain):
            assert len(left) == len(right)
            for l, r in zip(left, right):
                assert identical(l, r) or (
                    isinstance(l, float) and isinstance(r, float) and math.isclose(l, r)
                ), f"{left} != {right}"
            # Aggregates must in fact be bit-identical, not merely close.
            assert left == right and list(map(type, left)) == list(map(type, right))


def _run_local_pipeline(seed: int) -> list[tuple]:
    """The e13 pipeline shape at accel size, returning the result rows."""
    from repro.core.operators.aggregate import AggregateSpec, GroupByOperator
    from repro.core.operators.join_local import LocalHashJoinOperator
    from repro.core.operators.project import LocalFilterOperator
    from repro.core.operators.sort_local import LocalSortOperator
    from repro.engine import QurkEngine

    n_rows, n_categories = 1_500, 23
    engine = QurkEngine(seed=7, worker_pool_size=4)
    items = engine.create_table(
        "items",
        [("id", DataType.INTEGER), ("category", DataType.STRING), ("score", DataType.FLOAT)],
    )
    categories = engine.create_table(
        "categories", [("name", DataType.STRING), ("weight", DataType.FLOAT)]
    )
    items.insert_many(
        (i, f"c{(i * (seed % 97 + 1)) % n_categories}", ((i * 7919 + seed) % 1000) / 1000.0)
        for i in range(n_rows)
    )
    categories.insert_many((f"c{i}", 1.0 + i / n_categories) for i in range(n_categories))

    scan_items = ScanOperator(items)
    filt = LocalFilterOperator(
        Comparison(">", ColumnRef("score"), Literal(0.2)), scan_items.output_schema
    )
    filt.add_child(scan_items)
    scan_cats = ScanOperator(categories)
    joined = LocalHashJoinOperator(
        ColumnRef("category"), ColumnRef("name"), filt.output_schema, scan_cats.output_schema
    )
    joined.add_child(filt)
    joined.add_child(scan_cats)
    sort = LocalSortOperator(ColumnRef("score"), joined.output_schema, ascending=False)
    sort.add_child(joined)
    group = GroupByOperator(
        ["category"],
        [
            AggregateSpec("n", "count", None),
            AggregateSpec("total", "sum", ColumnRef("score")),
            AggregateSpec(
                "weighted", "avg", Arithmetic("*", ColumnRef("score"), ColumnRef("weight"))
            ),
        ],
        sort.output_schema,
    )
    group.add_child(sort)

    from repro.core.exec.context import ExecutionContext, QueryConfig
    from repro.core.exec.executor import QueryExecutor
    from repro.core.operators.sink import ResultSinkOperator

    results = engine.database.create_results_table(group.output_schema, query_id="prop")
    sink = ResultSinkOperator(results)
    sink.add_child(group)
    engine.budget_ledger.register("prop", None)
    context = ExecutionContext(
        query_id="prop",
        database=engine.database,
        task_manager=engine.task_manager,
        statistics=engine.statistics,
        budget=engine.budget_ledger,
        clock=engine.clock,
        config=QueryConfig(),
    )
    QueryExecutor(sink, context).run()
    return [tuple(row.values) for row in results.scan()]


# -- 3. index scan ≡ scan-then-filter over the workload tables ---------------


def _workload_tables() -> list[Table]:
    tables = [
        CompaniesWorkload(n_companies=60).build_table(),
        ProductsWorkload(n_products=60).build_table(),
    ]
    tables.extend(CelebrityWorkload(n_celebrities=20, n_spotted=40).build_tables())
    return tables


WORKLOAD_TABLES = _workload_tables()

#: (table, column, kind): every indexable workload column under both kinds
#: where the type allows (IMAGE columns are not orderable or hashable).
INDEXABLE = [
    (table, column.name.split(".")[-1], kind)
    for table in WORKLOAD_TABLES
    for column in table.schema
    if column.data_type in (DataType.STRING, DataType.INTEGER, DataType.FLOAT)
    for kind in ("hash", "sorted")
]


class TestIndexScanEquivalence:
    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_index_scan_matches_scan_then_filter(self, data):
        table, column, kind = data.draw(st.sampled_from(INDEXABLE))
        ops = ("=",) if kind == "hash" else IndexScanOperator.SUPPORTED_OPS
        op = data.draw(st.sampled_from(ops))
        present = sorted({row[column] for row in table.scan()})
        value = data.draw(
            st.sampled_from(present)
            | st.just("nope" if isinstance(present[0], str) else -1)
            | st.none()
        )
        table.create_index(column, kind=kind)
        index_rows = IndexScanOperator(table, column, op, value)._load_batch().to_rows()
        compiled = compile_expression(
            Comparison(op, ColumnRef(column), Literal(value)),
            ScanOperator(table).output_schema,
        )
        scan_rows = [
            row
            for row in ScanOperator(table)._load_batch().to_rows()
            if compiled(row) is True
        ]
        assert [r.values for r in index_rows] == [r.values for r in scan_rows]
