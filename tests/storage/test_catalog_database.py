"""Unit tests for the catalog and the database facade."""

import pytest

from repro.errors import CatalogError
from repro.storage import Catalog, Database, DataType, Schema, Table


class TestCatalog:
    def test_create_and_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.create_table("Companies", Schema.of("name"))
        assert catalog.table("companies").name == "Companies"
        assert catalog.has_table("COMPANIES")

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of("a"))
        with pytest.raises(CatalogError):
            catalog.create_table("t", Schema.of("a"))

    def test_if_not_exists_returns_existing(self):
        catalog = Catalog()
        first = catalog.create_table("t", Schema.of("a"))
        second = catalog.create_table("t", Schema.of("a"), if_not_exists=True)
        assert first is second

    def test_register_and_replace(self):
        catalog = Catalog()
        table = Table("t", Schema.of("a"))
        catalog.register(table)
        with pytest.raises(CatalogError):
            catalog.register(Table("t", Schema.of("a")))
        replacement = Table("t", Schema.of("b"))
        catalog.register(replacement, replace=True)
        assert catalog.table("t") is replacement

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of("a"))
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")
        catalog.drop_table("t", if_exists=True)

    def test_unknown_table_error_lists_known(self):
        catalog = Catalog()
        catalog.create_table("known", Schema.of("a"))
        with pytest.raises(CatalogError, match="known"):
            catalog.table("unknown")

    def test_iteration_and_names(self):
        catalog = Catalog()
        catalog.create_table("b", Schema.of("x"))
        catalog.create_table("a", Schema.of("x"))
        assert catalog.table_names() == ["a", "b"]
        assert len(catalog) == 2
        assert len(list(catalog)) == 2


class TestDatabase:
    def test_create_table_and_insert(self):
        db = Database()
        db.create_table("companies", [("name", DataType.STRING), ("employees", DataType.INTEGER)])
        count = db.insert("companies", [["Acme", 10], {"name": "Globex", "employees": 2}])
        assert count == 2
        assert len(db.table("companies")) == 2

    def test_results_tables_get_unique_names(self):
        db = Database()
        first = db.create_results_table(Schema.of("a"))
        second = db.create_results_table(Schema.of("a"))
        assert first.name != second.name
        assert db.has_table(first.name)

    def test_results_table_with_query_id(self):
        db = Database()
        table = db.create_results_table(Schema.of("a"), query_id="q42")
        assert "q42" in table.name

    def test_drop_table(self):
        db = Database()
        db.create_table("t", ["a"])
        db.drop_table("t")
        assert not db.has_table("t")
