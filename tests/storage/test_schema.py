"""Unit tests for columns and schemas."""

import pytest

from repro.errors import SchemaError, TypeCheckError
from repro.storage import Column, DataType, Schema


class TestColumn:
    def test_unqualified_and_qualifier(self):
        col = Column("companies.name", DataType.STRING)
        assert col.unqualified_name == "name"
        assert col.qualifier == "companies"

    def test_unqualified_column_has_no_qualifier(self):
        assert Column("name").qualifier is None

    def test_with_qualifier(self):
        col = Column("name", DataType.STRING).with_qualifier("companies")
        assert col.name == "companies.name"
        assert col.data_type is DataType.STRING

    def test_requalifying_replaces_existing_qualifier(self):
        col = Column("a.name").with_qualifier("b")
        assert col.name == "b.name"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_validate_accepts_null_for_nullable(self):
        assert Column("x", DataType.INTEGER).validate(None) is None

    def test_validate_rejects_null_for_not_null(self):
        with pytest.raises(SchemaError):
            Column("x", DataType.INTEGER, nullable=False).validate(None)

    def test_validate_type_mismatch(self):
        with pytest.raises(TypeCheckError):
            Column("x", DataType.INTEGER).validate("not an int")

    def test_validate_widens_int_to_float(self):
        value = Column("x", DataType.FLOAT).validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_renamed(self):
        assert Column("a", DataType.STRING).renamed("b").name == "b"


class TestSchema:
    def make(self):
        return Schema.of(
            ("name", DataType.STRING),
            ("employees", DataType.INTEGER),
            ("public", DataType.BOOLEAN),
        )

    def test_of_accepts_mixed_specs(self):
        schema = Schema.of(Column("a", DataType.STRING), ("b", DataType.INTEGER), "c")
        assert schema.names == ("a", "b", "c")
        assert schema.column("c").data_type is DataType.ANY

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_index_of_exact_and_unqualified(self):
        schema = self.make().qualified("companies")
        assert schema.index_of("companies.name") == 0
        assert schema.index_of("employees") == 1

    def test_ambiguous_unqualified_reference(self):
        schema = Schema.of("a.name", "b.name")
        with pytest.raises(SchemaError, match="ambiguous"):
            schema.index_of("name")

    def test_unknown_column(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self.make().index_of("nope")

    def test_contains(self):
        schema = self.make()
        assert "name" in schema
        assert "missing" not in schema

    def test_project_preserves_order_given(self):
        schema = self.make().project(["public", "name"])
        assert schema.names == ("public", "name")

    def test_concat(self):
        left = Schema.of("l.a", "l.b")
        right = Schema.of("r.c")
        assert left.concat(right).names == ("l.a", "l.b", "r.c")

    def test_extend(self):
        schema = self.make().extend(Column("ceo", DataType.STRING))
        assert schema.names[-1] == "ceo"
        assert len(schema) == 4

    def test_qualified_applies_to_all(self):
        schema = self.make().qualified("companies")
        assert all(name.startswith("companies.") for name in schema.names)
