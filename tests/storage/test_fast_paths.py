"""The batched data plane's fast paths must be invisible semantically.

Three families of guarantees:

* ``Row.unchecked`` derivations (project / concat / extended / replaced /
  with_schema) produce exactly what the validating constructor would, on
  every workload schema the engine actually runs.
* Schema derivations are memoized per shape: deriving the same projection,
  concatenation, extension or qualification twice returns the *same* object.
* ``RowBatch`` round-trips rows losslessly, and compiled expressions agree
  with tree interpretation.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.storage import (
    Column,
    ColumnRef,
    Comparison,
    DataType,
    Literal,
    Row,
    RowBatch,
    Schema,
    compile_expression,
)
from repro.storage.expressions import Arithmetic, BooleanOp, Not
from repro.workloads.celebrities import CelebrityWorkload
from repro.workloads.companies import CompaniesWorkload
from repro.workloads.products import ProductsWorkload


def workload_tables():
    """One populated table per workload schema the engine runs."""
    tables = [
        CompaniesWorkload(n_companies=8, seed=3).build_table(),
        ProductsWorkload(n_products=8, seed=3).build_table(),
    ]
    celebrities = CelebrityWorkload(n_celebrities=6, seed=3)
    photos, spotted = celebrities.build_tables()
    tables += [photos, spotted]
    return tables


@pytest.mark.parametrize("table", workload_tables(), ids=lambda t: t.name)
class TestUncheckedDerivationsMatchValidation:
    def test_unchecked_equals_validating_constructor(self, table):
        for row in table.scan():
            rebuilt = Row(row.schema, row.values)
            trusted = Row.unchecked(row.schema, row.values)
            assert trusted == rebuilt
            assert trusted.values == rebuilt.values

    def test_projection_matches_validated_projection(self, table):
        names = table.schema.names[:2]
        for row in table.scan():
            fast = row.project(names)
            slow = Row(row.schema.project(names), [row[n] for n in names])
            assert fast == slow

    def test_concat_matches_validated_concat(self, table):
        left_schema = table.schema.qualified("l")
        right_schema = table.schema.qualified("r")
        rows = table.rows()
        for row in rows:
            left = row.with_schema(left_schema)
            right = row.with_schema(right_schema)
            fast = left.concat(right)
            slow = Row(left_schema.concat(right_schema), left.values + right.values)
            assert fast == slow

    def test_extended_and_replaced_validate_new_values_only(self, table):
        extra = (Column("extra_note", DataType.STRING),)
        for row in table.scan():
            extended = row.extended(extra, ["note"])
            assert extended.values == row.values + ("note",)
            assert extended.schema.names == row.schema.names + ("extra_note",)
            replaced = extended.replaced("extra_note", "other")
            assert replaced["extra_note"] == "other"
        with pytest.raises(Exception):
            # The new value still goes through column validation.
            next(iter(table)).extended(extra, [1234])

    def test_with_schema_rebind_preserves_values(self, table):
        qualified = table.schema.qualified("q")
        for row in table.scan():
            rebound = row.with_schema(qualified)
            assert rebound.values == row.values
            assert rebound.schema is qualified

    def test_batch_roundtrip(self, table):
        rows = table.rows()
        batch = RowBatch.from_rows(table.schema, rows)
        assert len(batch) == len(rows)
        assert batch.to_rows() == rows
        for index, column in enumerate(table.schema.names):
            assert batch.column(column) == tuple(row[index] for row in rows)

    def test_table_batch_io_roundtrip(self, table):
        from repro.storage import Table

        batch = table.to_batch()
        assert batch.schema is table.schema
        assert batch.to_rows() == table.rows()
        # Fast path: identical column layout appends without re-validation.
        copy = Table(f"{table.name}_copy", table.schema)
        assert copy.insert_batch(batch) == len(table)
        assert copy.rows() == table.rows()
        # Re-validating path: same shape under different (qualified) names.
        qualified = Table(f"{table.name}_q", table.schema.qualified("q"))
        assert qualified.insert_batch(batch) == len(table)
        assert [row.values for row in qualified.scan()] == [
            row.values for row in table.scan()
        ]


class TestSchemaMemoization:
    def setup_method(self):
        self.schema = Schema.of(
            ("t.a", DataType.INTEGER), ("t.b", DataType.STRING), ("t.c", DataType.FLOAT)
        )

    def test_project_returns_same_object_for_same_shape(self):
        assert self.schema.project(("t.a", "t.b")) is self.schema.project(("t.a", "t.b"))
        assert self.schema.project(("b",)) is self.schema.project(("b",))
        assert self.schema.project(("t.a",)) is not self.schema.project(("t.b",))

    def test_concat_returns_same_object_for_same_operand(self):
        other = Schema.of(("u.x", DataType.INTEGER))
        assert self.schema.concat(other) is self.schema.concat(other)

    def test_extend_returns_same_object_for_same_columns(self):
        extra = (Column("d"), Column("e"))
        assert self.schema.extend(*extra) is self.schema.extend(*extra)

    def test_qualified_returns_same_object_for_same_qualifier(self):
        assert self.schema.qualified("q") is self.schema.qualified("q")
        assert self.schema.qualified("q") is not self.schema.qualified("r")

    def test_indices_of_is_cached_and_correct(self):
        assert self.schema.indices_of(("c", "a")) == (2, 0)
        assert self.schema.indices_of(("c", "a")) is self.schema.indices_of(("c", "a"))

    def test_duplicate_names_still_raise(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of("a", "b", "a")

    def test_ambiguous_and_unknown_lookups_still_raise(self):
        ambiguous = Schema.of("l.id", "r.id")
        with pytest.raises(SchemaError, match="ambiguous"):
            ambiguous.index_of("id")
        with pytest.raises(SchemaError, match="unknown"):
            ambiguous.index_of("nope")
        assert ambiguous.try_index_of("id") is None
        assert ambiguous.try_index_of("nope") is None
        assert ambiguous.index_of("l.id") == 0

    def test_row_get_fast_path(self):
        schema = Schema.of("l.id", "r.id", "name")
        row = Row(schema, [1, 2, "x"])
        assert row.get("name") == "x"
        assert row.get("l.id") == 1
        assert row.get("id", "default") == "default"  # ambiguous -> default
        assert row.get("missing", 42) == 42


names = st.text(alphabet="abcdefghij", min_size=1, max_size=8)


def unique_schemas(min_size=1, max_size=6):
    return st.lists(names, min_size=min_size, max_size=max_size, unique=True).map(
        lambda cols: Schema.of(*[(c, DataType.INTEGER) for c in cols])
    )


@given(unique_schemas(), st.data())
def test_batch_roundtrip_property(schema, data):
    rows = [
        Row(schema, [data.draw(st.integers(-99, 99) | st.none()) for _ in schema])
        for _ in range(data.draw(st.integers(0, 8)))
    ]
    batch = RowBatch.from_rows(schema, rows)
    assert batch.to_rows() == rows
    assert len(batch) == len(rows)


@given(unique_schemas(min_size=2), st.data())
def test_unchecked_project_equals_validating_project_property(schema, data):
    values = [data.draw(st.integers(-99, 99)) for _ in schema]
    row = Row(schema, values)
    subset = data.draw(
        st.permutations(list(schema.names)).map(lambda p: p[: max(1, len(p) // 2)])
    )
    fast = row.project(subset)
    slow = Row(schema.project(subset), [row[name] for name in subset])
    assert fast == slow
    assert fast.schema is slow.schema  # memoized: same object per shape


class TestCompiledExpressions:
    def test_compiled_matches_interpretation(self):
        schema = Schema.of(("a", DataType.INTEGER), ("b", DataType.INTEGER))
        expressions = [
            Literal(7),
            ColumnRef("a"),
            Comparison("<", ColumnRef("a"), ColumnRef("b")),
            Comparison(">=", ColumnRef("a"), Literal(0)),
            BooleanOp(
                "and",
                Comparison(">", ColumnRef("a"), Literal(1)),
                Not(Comparison("=", ColumnRef("b"), Literal(3))),
            ),
            BooleanOp(
                "or",
                Comparison("=", ColumnRef("a"), Literal(2)),
                Comparison("=", ColumnRef("b"), Literal(2)),
            ),
            Arithmetic("*", ColumnRef("a"), Arithmetic("+", ColumnRef("b"), Literal(1))),
        ]
        rows = [
            Row(schema, [a, b])
            for a in (0, 1, 2, 5, None)
            for b in (0, 2, 3, None)
        ]
        for expression in expressions:
            compiled = compile_expression(expression, schema)
            for row in rows:
                assert compiled(row) == expression.evaluate(row), str(expression)

    def test_compiled_unknown_column_raises_at_compile_time(self):
        schema = Schema.of("a")
        with pytest.raises(SchemaError):
            compile_expression(ColumnRef("missing"), schema)
