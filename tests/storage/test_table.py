"""Unit tests for heap tables, indexes and results-table polling."""

import pytest

from repro.errors import SchemaError, StorageError
from repro.storage import DataType, Row, Schema, Table


@pytest.fixture
def table():
    schema = Schema.of(("name", DataType.STRING), ("employees", DataType.INTEGER))
    return Table("companies", schema)


class TestInsertAndScan:
    def test_insert_sequence_mapping_and_row(self, table):
        table.insert(["Acme", 10])
        table.insert({"name": "Globex", "employees": 20})
        table.insert(Row(table.schema, ["Initech", 30]))
        assert len(table) == 3
        assert [row["name"] for row in table.scan()] == ["Acme", "Globex", "Initech"]

    def test_insert_many_returns_ids(self, table):
        ids = table.insert_many([["A", 1], ["B", 2]])
        assert ids == [0, 1]

    def test_empty_table_name_rejected(self):
        with pytest.raises(StorageError):
            Table("", Schema.of("a"))

    def test_truncate_keeps_counting_row_ids(self, table):
        table.insert(["A", 1])
        table.truncate()
        assert len(table) == 0
        new_id = table.insert(["B", 2])
        assert new_id == 1


class TestPolling:
    def test_rows_since_returns_only_new_rows(self, table):
        table.insert(["A", 1])
        first_seen = table.last_row_id()
        table.insert(["B", 2])
        table.insert(["C", 3])
        new = table.rows_since(first_seen)
        assert [row["name"] for _, row in new] == ["B", "C"]

    def test_rows_since_minus_one_returns_everything(self, table):
        table.insert(["A", 1])
        assert len(table.rows_since(-1)) == 1

    def test_last_row_id_empty(self, table):
        assert table.last_row_id() == -1


class TestIndexes:
    def test_lookup_without_index_scans(self, table):
        table.insert_many([["A", 1], ["B", 2], ["A", 3]])
        assert len(table.lookup("name", "A")) == 2

    def test_index_built_and_maintained(self, table):
        table.insert_many([["A", 1], ["B", 2]])
        table.create_index("name")
        table.insert(["A", 3])
        assert {row["employees"] for row in table.lookup("name", "A")} == {1, 3}
        assert "name" in table.indexed_columns

    def test_index_on_unknown_column_rejected(self, table):
        with pytest.raises(SchemaError):
            table.create_index("bogus")

    def test_select_with_python_predicate(self, table):
        table.insert_many([["A", 1], ["B", 20]])
        big = table.select(lambda row: row["employees"] > 10)
        assert [row["name"] for row in big] == ["B"]
