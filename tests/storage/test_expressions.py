"""Unit tests for the expression tree."""

import pytest

from repro.errors import ExpressionError
from repro.storage import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    DataType,
    FieldAccess,
    FunctionCall,
    Literal,
    Not,
    Row,
    Schema,
    find_calls,
    walk,
)


@pytest.fixture
def row():
    schema = Schema.of(
        ("name", DataType.STRING),
        ("price", DataType.FLOAT),
        ("stock", DataType.INTEGER),
        ("ceo_info", DataType.ANY),
    )
    return Row(schema, ["Acme", 10.0, 3, {"CEO": "Jane", "Phone": "555"}])


class TestBasicNodes:
    def test_literal_and_column_ref(self, row):
        assert Literal(5).evaluate(row) == 5
        assert ColumnRef("name").evaluate(row) == "Acme"

    def test_comparison_operators(self, row):
        assert Comparison(">", ColumnRef("price"), Literal(5)).evaluate(row) is True
        assert Comparison("=", ColumnRef("name"), Literal("Acme")).evaluate(row) is True
        assert Comparison("!=", ColumnRef("stock"), Literal(3)).evaluate(row) is False

    def test_comparison_null_semantics(self, row):
        null = Literal(None)
        assert Comparison("=", null, Literal(1)).evaluate(row) is None

    def test_unknown_comparison_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~", Literal(1), Literal(2))

    def test_incomparable_values_raise(self, row):
        expr = Comparison("<", ColumnRef("name"), Literal(3))
        with pytest.raises(ExpressionError):
            expr.evaluate(row)

    def test_arithmetic(self, row):
        expr = Arithmetic("*", ColumnRef("price"), ColumnRef("stock"))
        assert expr.evaluate(row) == 30.0

    def test_arithmetic_null_propagates(self, row):
        assert Arithmetic("+", Literal(None), Literal(1)).evaluate(row) is None

    def test_division_by_zero_raises_expression_error(self, row):
        with pytest.raises(ExpressionError):
            Arithmetic("/", Literal(1), Literal(0)).evaluate(row)


class TestBooleanLogic:
    def test_and_or_not(self, row):
        true = Literal(True)
        false = Literal(False)
        assert BooleanOp("and", true, false).evaluate(row) is False
        assert BooleanOp("or", true, false).evaluate(row) is True
        assert Not(false).evaluate(row) is True

    def test_three_valued_logic(self, row):
        null = Literal(None)
        assert BooleanOp("and", Literal(False), null).evaluate(row) is False
        assert BooleanOp("and", Literal(True), null).evaluate(row) is None
        assert BooleanOp("or", Literal(True), null).evaluate(row) is True
        assert BooleanOp("or", Literal(False), null).evaluate(row) is None
        assert Not(null).evaluate(row) is None


class TestFunctionsAndFields:
    def test_local_function_call(self, row):
        call = FunctionCall("double", (ColumnRef("stock"),), implementation=lambda x: 2 * x)
        assert call.evaluate(row) == 6

    def test_crowd_udf_without_implementation_raises(self, row):
        call = FunctionCall("findCEO", (ColumnRef("name"),))
        with pytest.raises(ExpressionError, match="no local implementation"):
            call.evaluate(row)

    def test_field_access_on_dict(self, row):
        expr = FieldAccess(ColumnRef("ceo_info"), "CEO")
        assert expr.evaluate(row) == "Jane"

    def test_field_access_missing_field(self, row):
        expr = FieldAccess(ColumnRef("ceo_info"), "Fax")
        with pytest.raises(ExpressionError):
            expr.evaluate(row)

    def test_field_access_on_null_is_null(self, row):
        expr = FieldAccess(Literal(None), "CEO")
        assert expr.evaluate(row) is None


class TestTreeUtilities:
    def test_walk_and_references(self):
        expr = BooleanOp(
            "and",
            Comparison(">", ColumnRef("price"), Literal(5)),
            FunctionCall("samePerson", (ColumnRef("a.image"), ColumnRef("b.image"))),
        )
        names = {type(node).__name__ for node in walk(expr)}
        assert {"BooleanOp", "Comparison", "ColumnRef", "Literal", "FunctionCall"} <= names
        assert expr.references() == {"price", "a.image", "b.image"}

    def test_find_calls_filters_by_name(self):
        expr = BooleanOp(
            "and",
            FunctionCall("f", (Literal(1),)),
            FunctionCall("g", (FunctionCall("f", (Literal(2),)),)),
        )
        assert len(find_calls(expr)) == 3
        assert len(find_calls(expr, "f")) == 2
