"""Property-based tests on storage invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DataType, Row, Schema, Table


names = st.text(alphabet="abcdefghij", min_size=1, max_size=8)


def unique_schemas(min_size=1, max_size=6):
    return st.lists(names, min_size=min_size, max_size=max_size, unique=True).map(
        lambda cols: Schema.of(*[(c, DataType.INTEGER) for c in cols])
    )


@given(unique_schemas(), st.data())
def test_row_roundtrips_through_dict(schema, data):
    values = [data.draw(st.integers(-1000, 1000) | st.none()) for _ in schema]
    row = Row(schema, values)
    rebuilt = Row.from_mapping(schema, row.to_dict())
    assert rebuilt == row


@given(unique_schemas(min_size=2), st.data())
def test_projection_is_idempotent_and_order_preserving(schema, data):
    values = [data.draw(st.integers(0, 10)) for _ in schema]
    row = Row(schema, values)
    subset = data.draw(st.permutations(list(schema.names)).map(lambda p: p[: max(1, len(p) // 2)]))
    projected = row.project(subset)
    assert projected.schema.names == tuple(subset)
    assert projected.project(subset) == projected


@given(unique_schemas(), st.lists(st.lists(st.integers(0, 100), min_size=0), min_size=0, max_size=30))
@settings(max_examples=50)
def test_table_insert_count_and_polling_invariants(schema, raw_rows):
    table = Table("t", schema)
    inserted = 0
    seen = table.last_row_id()
    for raw in raw_rows:
        if len(raw) != len(schema):
            continue
        table.insert(raw)
        inserted += 1
    assert len(table) == inserted
    # Polling from the initial watermark returns exactly the inserted rows, in order.
    polled = table.rows_since(seen)
    assert [r.values for _, r in polled] == [r.values for r in table.scan()]
    # Row ids strictly increase.
    ids = [rid for rid, _ in polled]
    assert ids == sorted(ids) and len(set(ids)) == len(ids)


@given(st.lists(st.tuples(st.sampled_from("abcde"), st.integers(0, 5)), max_size=40))
def test_index_lookup_matches_scan(pairs):
    schema = Schema.of(("key", DataType.STRING), ("value", DataType.INTEGER))
    table = Table("t", schema)
    for key, value in pairs:
        table.insert([key, value])
    table.create_index("key")
    for key in "abcde":
        indexed = {(r["key"], r["value"]) for r in table.lookup("key", key)}
        scanned = {(r["key"], r["value"]) for r in table.scan() if r["key"] == key}
        assert indexed == scanned


@given(unique_schemas(min_size=1, max_size=3), unique_schemas(min_size=1, max_size=3))
def test_schema_concat_length_and_name_preservation(left, right):
    # Qualify to avoid duplicate-name collisions, as the planner does for joins.
    left_q = left.qualified("l")
    right_q = right.qualified("r")
    combined = left_q.concat(right_q)
    assert len(combined) == len(left_q) + len(right_q)
    assert combined.names[: len(left_q)] == left_q.names
    assert combined.names[len(left_q):] == right_q.names
