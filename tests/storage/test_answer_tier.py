"""Durability tests for the answer tier (WAL + snapshot backed Task Cache)."""

import pytest

from repro.core.tasks.task_cache import CachePolicy, TaskCache
from repro.errors import StorageError
from repro.storage.answer_tier import ANSWERS_WAL_FILENAME, DurableAnswerTier
from repro.storage.wal import WriteAheadLog


def _warm_cache(tier):
    cache = TaskCache()
    cache.attach_tier(tier)
    cache.store("findCEO", ("Acme",), {"CEO": "Jane"}, cost=0.075, now=1.0)
    cache.store("findCEO", ("Bolt",), {"CEO": "Ana"}, cost=0.075, now=2.0)
    cache.store("isRed", ("mug",), True, cost=0.045, now=3.0, confidence=0.95)
    return cache


class TestDurableAnswerTier:
    def test_round_trip_across_restarts(self, tmp_path):
        tier = DurableAnswerTier(tmp_path)
        _warm_cache(tier)
        tier.close()

        reopened = DurableAnswerTier(tmp_path)
        assert reopened.entry_count == 3
        fresh = TaskCache()
        assert reopened.load_into(fresh) == 3
        entry = fresh.lookup("findCEO", ("Acme",))
        assert entry is not None and entry.reduced == {"CEO": "Jane"}
        assert fresh.lookup("isRed", ("mug",)).confidence == pytest.approx(0.95)
        reopened.close()

    def test_checkpoint_compacts_and_survives(self, tmp_path):
        tier = DurableAnswerTier(tmp_path)
        _warm_cache(tier)
        tier.checkpoint()
        assert list(tmp_path.glob("snapshot-*"))
        tier.close()

        reopened = DurableAnswerTier(tmp_path)
        assert reopened.entry_count == 3
        # Post-checkpoint stores land in the truncated log and still replay.
        cache = TaskCache()
        reopened.load_into(cache)
        cache.attach_tier(reopened)
        cache.store("isRed", ("cup",), False, cost=0.045, now=4.0)
        reopened.close()
        third = DurableAnswerTier(tmp_path)
        assert third.entry_count == 4
        third.close()

    def test_invalidate_is_durable(self, tmp_path):
        tier = DurableAnswerTier(tmp_path)
        cache = _warm_cache(tier)
        cache.invalidate("findCEO")
        tier.close()
        reopened = DurableAnswerTier(tmp_path)
        assert reopened.entry_count == 1
        fresh = TaskCache()
        reopened.load_into(fresh)
        assert fresh.lookup("findCEO", ("Acme",)) is None
        assert fresh.lookup("isRed", ("mug",)) is not None
        reopened.close()

    def test_refuses_an_engine_wal_directory(self, tmp_path):
        (tmp_path / "wal.log").write_bytes(b"")
        with pytest.raises(StorageError):
            DurableAnswerTier(tmp_path)

    def test_fsync_always_survives_a_crash(self, tmp_path):
        tier = DurableAnswerTier(tmp_path, fsync="always")
        _warm_cache(tier)
        tier.wal.simulate_crash()
        reopened = DurableAnswerTier(tmp_path)
        assert reopened.entry_count == 3
        reopened.close()

    def test_unflushed_interval_tail_may_be_lost_but_log_stays_readable(self, tmp_path):
        tier = DurableAnswerTier(tmp_path, fsync="off")
        _warm_cache(tier)
        tier.wal.simulate_crash()
        # Whatever survived, reopening must not raise and must replay a
        # consistent prefix.
        reopened = DurableAnswerTier(tmp_path)
        assert 0 <= reopened.entry_count <= 3
        reopened.close()

    def test_preloaded_entries_do_not_echo_into_the_wal(self, tmp_path):
        tier = DurableAnswerTier(tmp_path)
        _warm_cache(tier)
        tier.close()
        reopened = DurableAnswerTier(tmp_path)
        cache = TaskCache()
        reopened.load_into(cache)
        cache.attach_tier(reopened)
        reopened.close()
        _, info = WriteAheadLog.open(tmp_path / ANSWERS_WAL_FILENAME)
        stored = [r for r in info.records if r.type == "answer_stored"]
        assert len(stored) == 3  # the original stores only, no replay echo

    def test_rejected_admissions_are_not_journaled(self, tmp_path):
        tier = DurableAnswerTier(tmp_path)
        cache = TaskCache(policy=CachePolicy(min_confidence=0.9))
        cache.attach_tier(tier)
        assert not cache.store("f", ("x",), True, cost=0.1, now=0.0, confidence=0.2)
        tier.close()
        reopened = DurableAnswerTier(tmp_path)
        assert reopened.entry_count == 0
        reopened.close()


class TestEngineWarmRestart:
    def test_second_engine_answers_from_the_shared_tier(self, tmp_path):
        from repro.experiments import build_companies_engine

        sql = (
            "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
            "FROM companies"
        )

        def run_once():
            run = build_companies_engine(n_companies=5, seed=11)
            engine = run.engine
            engine.attach_answer_tier(tmp_path / "answers")
            handle = engine.query(sql)
            engine.scheduler.drain()
            engine.clock.run_until_idle()
            assert handle.is_complete
            cost = engine.total_crowd_cost
            cache_answers = engine.task_manager.stats.cache_answers
            engine.answer_tier.close()
            return cost, cache_answers

        first_cost, first_cache = run_once()
        assert first_cost > 0
        assert first_cache == 0

        second_cost, second_cache = run_once()
        assert second_cost == 0.0
        assert second_cache > 0

    def test_attach_twice_is_an_error(self, tmp_path):
        from repro.errors import QurkError
        from repro.experiments import build_companies_engine

        engine = build_companies_engine(n_companies=2, seed=11).engine
        engine.attach_answer_tier(tmp_path / "answers")
        with pytest.raises(QurkError):
            engine.attach_answer_tier(tmp_path / "other")
        engine.answer_tier.close()
