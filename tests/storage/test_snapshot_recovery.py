"""Snapshot round-trips and engine checkpoint/recover correctness."""

import json

import pytest

from repro.engine import QurkEngine
from repro.errors import QurkError, RecoveryError, SnapshotError
from repro.storage.durability import DurabilityConfig
from repro.storage.snapshot import (
    load_latest_snapshot,
    pack_rng_state,
    pack_value,
    snapshot_path,
    unpack_rng_state,
    unpack_value,
    write_snapshot,
)
from repro.testing.crashpoints import (
    plain_crash_scenario,
    recovered_fingerprint,
    recovered_query_count,
    reference_fingerprint,
    run_durable,
)


class TestValuePacking:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            3.5,
            "text",
            (1, 2),
            [1, (2, 3), "x"],
            {"k": (1, [2, (3, None)])},
            ((1, "a"), (2, "b")),
            {},
            [],
        ],
    )
    def test_round_trip_is_exact(self, value):
        packed = pack_value(value)
        json.dumps(packed)  # must be JSON-able as-is
        restored = unpack_value(json.loads(json.dumps(packed)))
        assert restored == value
        assert type(restored) is type(value)

    def test_unsupported_type_raises_not_skips(self):
        with pytest.raises(SnapshotError):
            pack_value({"bad": object()})

    def test_rng_state_round_trip(self):
        import random

        rng = random.Random(99)
        rng.random()
        state = rng.getstate()
        restored = unpack_rng_state(json.loads(json.dumps(pack_rng_state(state))))
        twin = random.Random()
        twin.setstate(restored)
        assert [twin.random() for _ in range(5)] == [rng.random() for _ in range(5)]


class TestSnapshotFiles:
    def test_write_then_load(self, tmp_path):
        state = {"clock_now": 12.5, "nested": {"a": [1, 2]}}
        write_snapshot(tmp_path, state, lsn=42)
        loaded = load_latest_snapshot(tmp_path)
        assert loaded == (42, state)

    def test_latest_wins_and_pruning_keeps_newest(self, tmp_path):
        for lsn in (10, 20, 30):
            write_snapshot(tmp_path, {"lsn_marker": lsn}, lsn=lsn, keep=2)
        lsn, state = load_latest_snapshot(tmp_path)
        assert lsn == 30 and state == {"lsn_marker": 30}
        assert not snapshot_path(tmp_path, 10).exists()  # pruned
        assert snapshot_path(tmp_path, 20).exists()

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        write_snapshot(tmp_path, {"generation": "old"}, lsn=10)
        write_snapshot(tmp_path, {"generation": "new"}, lsn=20)
        snapshot_path(tmp_path, 20).write_text("{not json")
        lsn, state = load_latest_snapshot(tmp_path)
        assert (lsn, state["generation"]) == (10, "old")

    def test_checksum_mismatch_is_detected(self, tmp_path):
        write_snapshot(tmp_path, {"v": 1}, lsn=5)
        path = snapshot_path(tmp_path, 5)
        document = json.loads(path.read_text())
        document["state"]["v"] = 2  # tampered without recomputing the checksum
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotError):
            load_latest_snapshot(tmp_path)

    def test_empty_directory_is_no_snapshot(self, tmp_path):
        assert load_latest_snapshot(tmp_path) is None


def _durable_engine(tmp_path, **config):
    scenario = plain_crash_scenario()
    engine = scenario.build_engine()
    engine.enable_durability(
        DurabilityConfig(directory=str(tmp_path), **config),
        spec=scenario.spec_payload(),
    )
    return scenario, engine


class TestEngineCheckpoint:
    def test_checkpoint_requires_durability(self):
        engine = QurkEngine(seed=1)
        with pytest.raises(QurkError):
            engine.checkpoint()

    def test_checkpoint_requires_quiescence(self, tmp_path):
        scenario, engine = _durable_engine(tmp_path, snapshot_every=None)
        engine.query(scenario.phases[0][0]["sql"])
        with pytest.raises(SnapshotError):
            engine.checkpoint()

    def test_durable_engine_rejects_non_replayable_submissions(self, tmp_path):
        from repro.core.exec.context import QueryConfig
        from repro.core.lang.sql_parser import parse_select

        scenario, engine = _durable_engine(tmp_path, snapshot_every=None)
        sql = scenario.phases[0][0]["sql"]
        with pytest.raises(QurkError):
            engine.query(parse_select(sql))  # pre-parsed: not in the log verbatim
        with pytest.raises(QurkError):
            engine.query(sql, config=QueryConfig())  # config bypasses the log

    def test_enable_durability_twice_rejected(self, tmp_path):
        _, engine = _durable_engine(tmp_path)
        with pytest.raises(QurkError):
            engine.enable_durability(DurabilityConfig(directory=str(tmp_path)))

    def test_checkpoint_truncates_wal_and_survives_restart(self, tmp_path):
        scenario, engine = _durable_engine(tmp_path, snapshot_every=None)
        engine.query(scenario.phases[0][0]["sql"])
        engine.scheduler.drain()
        engine.clock.run_until_idle()
        pre_truncate = engine.journal.wal.last_lsn
        engine.checkpoint()
        assert engine.journal.wal.base_lsn == pre_truncate
        engine.journal.wal.simulate_crash()

        result = QurkEngine.recover(tmp_path)
        assert result.snapshot_lsn == pre_truncate
        assert result.replayed_query_ids == []  # everything was snapshotted
        assert recovered_query_count(result) == 1

    def test_auto_checkpoint_fires_at_drain_quiescence(self, tmp_path):
        scenario, engine = _durable_engine(tmp_path, snapshot_every=5)
        engine.query(scenario.phases[0][0]["sql"])
        engine.scheduler.drain()
        assert load_latest_snapshot(tmp_path) is not None

    def test_recovery_detects_catalog_mismatch(self, tmp_path):
        scenario, engine = _durable_engine(tmp_path, snapshot_every=None)
        engine.query(scenario.phases[0][0]["sql"])
        engine.scheduler.drain()
        engine.clock.run_until_idle()
        engine.checkpoint()
        engine.journal.wal.simulate_crash()

        def wrong_factory():
            from repro.testing.crashpoints import build_plain_products_engine

            return build_plain_products_engine(n_products=7, seed=13)  # wrong row count

        with pytest.raises(RecoveryError):
            QurkEngine.recover(tmp_path, factory=wrong_factory)

    def test_recover_without_wal_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            QurkEngine.recover(tmp_path)


class TestRecoveredStateFidelity:
    def test_snapshot_plus_replay_matches_uninterrupted_run(self, tmp_path):
        """Crash after the checkpoint: snapshot state + replayed tail."""
        scenario = plain_crash_scenario()
        # Crash far past the end: the run completes (with its phase-0
        # checkpoint taken) and the "crash" only loses the unflushed tail.
        run_durable(scenario, tmp_path, fsync="interval", crash_at=10_000)
        result = QurkEngine.recover(tmp_path)
        assert result.snapshot_lsn is not None
        n = recovered_query_count(result)
        assert n == scenario.total_submissions
        assert recovered_fingerprint(result) == reference_fingerprint(scenario, n)

    def test_recovered_engine_keeps_working(self, tmp_path):
        """A recovered engine is live: it accepts and completes new queries."""
        scenario = plain_crash_scenario()
        run_durable(scenario, tmp_path, fsync="interval", crash_at=10_000)
        result = QurkEngine.recover(tmp_path)
        engine = result.engine
        handle = engine.query(scenario.phases[0][0]["sql"])
        engine.scheduler.drain()
        engine.clock.run_until_idle()
        assert handle.status.value == "completed"
        assert len(handle.results()) > 0
