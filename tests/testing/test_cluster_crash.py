"""Cluster crash handling: fail-fast detection, durable heal, client retry.

Without durability a killed worker must surface as a diagnosed
:class:`~repro.errors.ShardCrashedError` (never a hang on the pipe).  With a
``durability_root``, the coordinator heals the dead shard in place — the
fresh process replays its own WAL, the interrupted op is retried exactly
once, and the cluster's final fingerprints match an uncrashed run.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.cluster import EngineSpec, ShardCoordinator
from repro.cluster.server import request
from repro.errors import ClusterError, ShardCrashedError

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"
N_QUERIES = 4
SPEC = EngineSpec(
    factory="repro.experiments.harness:build_products_engine",
    kwargs={"n_products": 8, "filter_batch": 1, "seed": 13},
)


def _kill_shard(cluster: ShardCoordinator, shard_id: int) -> None:
    process = cluster._shards[shard_id].process
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=10)
    assert not process.is_alive()


def _durable_run(root, *, kill: bool) -> tuple[list[dict], int]:
    with ShardCoordinator(SPEC, 2, durability_root=root) as cluster:
        cluster.submit_many([{"sql": FILTER_SQL} for _ in range(N_QUERIES)])
        if kill:
            _kill_shard(cluster, 0)
        statuses = cluster.drain()
        assert all(status == "completed" for status in statuses.values())
        return cluster.fingerprint(), cluster.heals


class TestCrashDetection:
    def test_kill_without_durability_raises_diagnosed_error(self):
        with ShardCoordinator(SPEC, 2) as cluster:
            cluster.submit_many([{"sql": FILTER_SQL} for _ in range(N_QUERIES)])
            pid = cluster._shards[0].process.pid
            _kill_shard(cluster, 0)
            started = time.monotonic()
            with pytest.raises(ShardCrashedError) as excinfo:
                cluster.drain()
            elapsed = time.monotonic() - started
        error = excinfo.value
        assert error.shard_id == 0
        assert error.pid == pid
        assert error.op == "drain"
        assert any(
            marker in str(error) for marker in ("exit code", "pipe", "unreachable")
        )
        # Detected via liveness polling, not by waiting out call_timeout.
        assert elapsed < 30

    def test_heal_without_durability_root_rejected(self):
        with ShardCoordinator(SPEC, 1) as cluster:
            with pytest.raises(ClusterError):
                cluster.heal(0)


class TestDurableHeal:
    def test_killed_shard_heals_and_matches_uncrashed_run(self, tmp_path):
        crashed_fp, heals = _durable_run(tmp_path / "crashed", kill=True)
        reference_fp, no_heals = _durable_run(tmp_path / "reference", kill=False)
        assert heals == 1
        assert no_heals == 0
        assert crashed_fp == reference_fp

    def test_healed_shard_keeps_serving(self, tmp_path):
        with ShardCoordinator(SPEC, 2, durability_root=tmp_path) as cluster:
            handles = cluster.submit_many(
                [{"sql": FILTER_SQL} for _ in range(N_QUERIES)]
            )
            _kill_shard(cluster, 0)
            cluster.drain()
            assert cluster.heals == 1
            # Post-heal the shard answers per-query ops and takes new work.
            for handle in handles:
                assert handle.status()["status"] == "completed"
                assert len(handle.results()) >= 0
            more = cluster.submit_many([{"sql": FILTER_SQL}])
            statuses = cluster.drain()
            assert statuses[more[0].query_id] == "completed"


class TestClientRetry:
    def test_request_fails_terminally_after_bounded_attempts(self):
        async def scenario():
            # Grab a port nobody is listening on, then release it.
            server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            started = time.monotonic()
            with pytest.raises(ClusterError) as excinfo:
                await request("127.0.0.1", port, {"op": "stats"}, backoff=0.01)
            return excinfo.value, time.monotonic() - started

        error, elapsed = asyncio.run(scenario())
        message = str(error)
        assert "failed after 3 attempt(s)" in message
        assert message.count("attempt") >= 3  # every failure is named
        assert elapsed < 10  # bounded, not an infinite retry loop

    def test_request_rejects_zero_attempts(self):
        async def scenario():
            with pytest.raises(ClusterError):
                await request("127.0.0.1", 1, {"op": "stats"}, attempts=0)

        asyncio.run(scenario())
