"""Cross-shard answer sharing through the coordinator's answer directory.

A task answered on one shard must become a cache hit on every other shard
once the coordinator has synced (``share_answers=True``); with sharing off
(the default) shards stay fully isolated and the e1-e17 fingerprints are
untouched.  Placement is round-robin, so query routing in these tests is
deterministic: cq1 -> shard 0, cq2 -> shard 1, cq3 -> shard 0, ...
"""

from repro.cluster import EngineSpec, ShardCoordinator, ShardWorker
from repro.cluster.serialization import encode_query
from repro.experiments import build_companies_engine

SEED = 11
SPEC = EngineSpec(
    factory="repro.experiments.harness:build_companies_engine",
    kwargs={"n_companies": 2, "seed": SEED},
)

QUERY_TEMPLATE = (
    "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
    "FROM companies WHERE companyName = '{company}'"
)


def _company_sql(index: int = 0) -> str:
    records = build_companies_engine(n_companies=2, seed=SEED).workload.records
    return QUERY_TEMPLATE.format(company=records[index].name)


class TestCrossShardHits:
    def test_answer_from_shard_zero_is_a_hit_on_shard_one(self):
        sql = _company_sql()
        with ShardCoordinator(SPEC, n_shards=2, share_answers=True) as cluster:
            # Round 1: cq1 lands on shard 0 and pays the crowd; the drain's
            # exit sync pulls its answer into the coordinator directory.
            cluster.submit_many([{"sql": sql}])
            statuses = cluster.drain()
            assert set(statuses.values()) == {"completed"}
            hits_after_round1 = cluster.stats().totals["hits_posted"]
            assert hits_after_round1 > 0

            # Round 2: cq2 -> shard 1 (served from the imported entry),
            # cq3 -> shard 0 (served from its own cache).  No new HITs.
            cluster.submit_many([{"sql": sql}, {"sql": sql}])
            statuses = cluster.drain()
            assert set(statuses.values()) == {"completed"}
            stats = cluster.stats()
            assert stats.totals["hits_posted"] == hits_after_round1
            assert stats.totals["cross_shard_hits"] >= 1
            assert stats.totals["cache_entries_imported"] >= 1
            assert stats.answer_directory_entries >= 1
            assert stats.answers_pushed >= 1

    def test_sync_is_incremental(self):
        sql = _company_sql()
        with ShardCoordinator(SPEC, n_shards=2, share_answers=True) as cluster:
            cluster.submit_many([{"sql": sql}])
            cluster.drain()
            # Everything was pulled and pushed at the drain boundary; an
            # extra manual round finds nothing new to move.
            assert cluster.sync_answers() == {"pulled": 0, "merged": 0, "pushed": 0}

    def test_isolated_shards_rebuy_answers(self):
        sql = _company_sql()
        with ShardCoordinator(SPEC, n_shards=2, share_answers=False) as cluster:
            cluster.submit_many([{"sql": sql}])
            cluster.drain()
            hits_after_round1 = cluster.stats().totals["hits_posted"]
            cluster.submit_many([{"sql": sql}, {"sql": sql}])
            cluster.drain()
            stats = cluster.stats()
            # Shard 1 never saw the answer: it posts its own HITs.
            assert stats.totals["hits_posted"] > hits_after_round1
            assert stats.totals["cross_shard_hits"] == 0
            assert stats.totals["cache_entries_imported"] == 0
            assert stats.answer_directory_entries == 0


class TestWorkerCacheOps:
    """The shard protocol ops, driven in-process without forking."""

    def test_export_then_import_transfers_the_answer(self):
        sql = _company_sql()
        source = ShardWorker(SPEC, shard_id=0)
        assert source.handle(
            {"op": "submit_many", "queries": [encode_query(sql, query_id="cq1")]}
        )["ok"]
        assert source.handle({"op": "drain"})["ok"]
        export = source.handle({"op": "cache_export", "since": 0})
        assert export["ok"] and export["cursor"] > 0 and export["entries"]

        sink = ShardWorker(SPEC, shard_id=1)
        imported = sink.handle({"op": "cache_import", "entries": export["entries"]})
        assert imported["ok"] and imported["imported"] == len(export["entries"])
        assert sink.handle(
            {"op": "submit_many", "queries": [encode_query(sql, query_id="cq2")]}
        )["ok"]
        assert sink.handle({"op": "drain"})["ok"]
        totals = sink.handle({"op": "stats"})["totals"]
        assert totals["hits_posted"] == 0
        assert totals["total_cost"] == 0.0
        assert totals["cross_shard_hits"] >= 1

    def test_export_cursor_resumes_where_it_left_off(self):
        sql = _company_sql()
        worker = ShardWorker(SPEC, shard_id=0)
        worker.handle({"op": "submit_many", "queries": [encode_query(sql, query_id="cq1")]})
        worker.handle({"op": "drain"})
        first = worker.handle({"op": "cache_export", "since": 0})
        again = worker.handle({"op": "cache_export", "since": first["cursor"]})
        assert again["entries"] == []
        assert again["cursor"] == first["cursor"]
