"""The asyncio TCP front end: submit → pump-driven progress → results.

The server's background pump loop is what makes the cluster *live*: a
submitted query completes without any client calling ``drain``.  This test
runs a real 1-shard cluster behind the server, submits over TCP, polls
status until completion and reads the rows back — the whole external
protocol in one round trip.
"""

import asyncio

import pytest

from repro.cluster import EngineSpec, ShardCoordinator
from repro.cluster.serialization import decode_rows
from repro.cluster.server import ClusterServer, request
from repro.errors import ClusterError

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"
SPEC = EngineSpec(
    factory="repro.experiments.harness:build_products_engine",
    kwargs={"n_products": 10, "filter_batch": 1, "seed": 13},
)


async def _exercise_server() -> None:
    with ShardCoordinator(SPEC, 1) as cluster:
        async with ClusterServer(cluster) as server:
            assert server.port != 0  # bound to a real ephemeral port
            host, port = server.host, server.port

            submitted = await request(host, port, {"op": "submit", "sql": FILTER_SQL})
            assert submitted["ok"], submitted
            query_id = submitted["query_id"]
            assert query_id == "cq1" and submitted["shard"] == 0

            # The pump loop drives the shard; nobody ever calls drain().
            for _ in range(400):
                status = await request(host, port, {"op": "status", "query_id": query_id})
                assert status["ok"], status
                if status["status"] == "completed":
                    break
                await asyncio.sleep(0.05)
            else:
                raise AssertionError(f"query never completed: {status}")

            reply = await request(host, port, {"op": "results", "query_id": query_id})
            rows = decode_rows(reply["rows"])
            assert rows and all(row.schema.columns[0].name == "name" for row in rows)
            assert len(rows) == status["results_emitted"]

            stats = await request(host, port, {"op": "stats"})
            assert stats["ok"]
            assert stats["totals"]["queries"] == 1
            assert stats["totals"]["total_cost"] > 0

            unknown = await request(host, port, {"op": "never-heard-of-it"})
            assert not unknown["ok"]
            assert "unknown server op" in unknown["error"]

            missing = await request(host, port, {"op": "submit"})
            assert not missing["ok"] and "requires 'sql'" in missing["error"]


def test_server_round_trip():
    asyncio.run(asyncio.wait_for(_exercise_server(), timeout=60))


def test_request_helper_rejects_dead_port():
    """Connect failures retry with backoff, then raise a terminal error."""
    with pytest.raises(ClusterError, match=r"failed after 2 attempt\(s\)"):
        asyncio.run(
            request("127.0.0.1", 1, {"op": "stats"}, attempts=2, backoff=0.01)
        )
