"""The asyncio TCP front end: submit → pump-driven progress → results.

The server's background pump loop is what makes the cluster *live*: a
submitted query completes without any client calling ``drain``.  This test
runs a real 1-shard cluster behind the server, submits over TCP, polls
status until completion and reads the rows back — the whole external
protocol in one round trip.
"""

import asyncio

import pytest

from repro.cluster import EngineSpec, ShardCoordinator
from repro.cluster.serialization import decode_rows
from repro.cluster.server import ClusterServer, raise_for_reply, request
from repro.errors import ClusterError, EngineOverloadedError

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"
SPEC = EngineSpec(
    factory="repro.experiments.harness:build_products_engine",
    kwargs={"n_products": 10, "filter_batch": 1, "seed": 13},
)


async def _exercise_server() -> None:
    with ShardCoordinator(SPEC, 1) as cluster:
        async with ClusterServer(cluster) as server:
            assert server.port != 0  # bound to a real ephemeral port
            host, port = server.host, server.port

            submitted = await request(host, port, {"op": "submit", "sql": FILTER_SQL})
            assert submitted["ok"], submitted
            query_id = submitted["query_id"]
            assert query_id == "cq1" and submitted["shard"] == 0

            # The pump loop drives the shard; nobody ever calls drain().
            for _ in range(400):
                status = await request(host, port, {"op": "status", "query_id": query_id})
                assert status["ok"], status
                if status["status"] == "completed":
                    break
                await asyncio.sleep(0.05)
            else:
                raise AssertionError(f"query never completed: {status}")

            reply = await request(host, port, {"op": "results", "query_id": query_id})
            rows = decode_rows(reply["rows"])
            assert rows and all(row.schema.columns[0].name == "name" for row in rows)
            assert len(rows) == status["results_emitted"]

            stats = await request(host, port, {"op": "stats"})
            assert stats["ok"]
            assert stats["totals"]["queries"] == 1
            assert stats["totals"]["total_cost"] > 0

            unknown = await request(host, port, {"op": "never-heard-of-it"})
            assert not unknown["ok"]
            assert "unknown server op" in unknown["error"]

            missing = await request(host, port, {"op": "submit"})
            assert not missing["ok"] and "requires 'sql'" in missing["error"]


def test_server_round_trip():
    asyncio.run(asyncio.wait_for(_exercise_server(), timeout=60))


def test_request_helper_rejects_dead_port():
    """Connect failures retry with backoff, then raise a terminal error."""
    with pytest.raises(ClusterError, match=r"failed after 2 attempt\(s\)"):
        asyncio.run(
            request("127.0.0.1", 1, {"op": "stats"}, attempts=2, backoff=0.01)
        )


class TestRequestRetrySemantics:
    """Transport failures retry; application errors are terminal at once."""

    def _record_retry_delays(self, monkeypatch, **kwargs) -> list[float]:
        """Drive request() against a dead transport, capturing its sleeps."""
        from repro.cluster import server as server_module

        delays: list[float] = []

        async def always_refused(host, port, message):
            raise ConnectionError("refused")

        async def record_sleep(delay):
            delays.append(delay)

        monkeypatch.setattr(server_module, "_request_once", always_refused)
        monkeypatch.setattr(server_module.asyncio, "sleep", record_sleep)
        with pytest.raises(ClusterError):
            asyncio.run(request("127.0.0.1", 9, {"op": "stats"}, **kwargs))
        return delays

    def test_application_errors_do_not_burn_retry_attempts(self, monkeypatch):
        from repro.cluster import server as server_module

        calls = []

        async def deliberate_rejection(host, port, message):
            calls.append(message)
            return {"ok": False, "error": "overloaded", "error_type": "overloaded"}

        monkeypatch.setattr(server_module, "_request_once", deliberate_rejection)
        reply = asyncio.run(
            request("127.0.0.1", 9, {"op": "submit"}, attempts=5, backoff=0.01)
        )
        # The server answered deliberately: one attempt, reply passed through.
        assert len(calls) == 1
        assert not reply["ok"]

    def test_backoff_grows_exponentially_without_jitter(self, monkeypatch):
        delays = self._record_retry_delays(monkeypatch, attempts=4, backoff=0.1)
        assert delays == [0.1, 0.2, 0.4]

    def test_jittered_backoff_is_seeded_and_bounded(self, monkeypatch):
        first = self._record_retry_delays(
            monkeypatch, attempts=4, backoff=0.1, jitter=0.5, seed=3
        )
        second = self._record_retry_delays(
            monkeypatch, attempts=4, backoff=0.1, jitter=0.5, seed=3
        )
        other_seed = self._record_retry_delays(
            monkeypatch, attempts=4, backoff=0.1, jitter=0.5, seed=4
        )
        assert first == second  # same seed: reproducible delays
        assert first != other_seed
        for base, delay in zip([0.1, 0.2, 0.4], first):
            assert base <= delay <= base * 1.5

    def test_request_validates_its_knobs(self):
        with pytest.raises(ClusterError, match="at least 1 attempt"):
            asyncio.run(request("127.0.0.1", 9, {"op": "stats"}, attempts=0))
        with pytest.raises(ClusterError, match="jitter"):
            asyncio.run(request("127.0.0.1", 9, {"op": "stats"}, jitter=1.5))


class TestRaiseForReply:
    def test_ok_reply_passes_through(self):
        reply = {"ok": True, "rows": []}
        assert raise_for_reply(reply) is reply

    def test_overloaded_reply_becomes_typed_backpressure(self):
        with pytest.raises(EngineOverloadedError) as excinfo:
            raise_for_reply(
                {
                    "ok": False,
                    "error": "EngineOverloadedError: queue full",
                    "error_type": "overloaded",
                    "retry_after": 12.5,
                }
            )
        assert excinfo.value.retry_after == 12.5

    def test_other_errors_become_cluster_errors(self):
        with pytest.raises(ClusterError, match="no such query"):
            raise_for_reply({"ok": False, "error": "no such query"})
