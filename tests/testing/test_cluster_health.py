"""Health-aware shard routing: placement, marks, rebalance, backpressure.

The coordinator observes per-shard health (op-latency EWMA, crash count,
queue depth, last-reply heartbeat) for free on its side of the pipe; the
routing *verdict* only changes at explicit points — a manual mark or the
crash count crossing ``unhealthy_crash_threshold`` — so a ``"health"``
placement stays deterministic.  ``rebalance_pending`` moves never-admitted
queries off a degraded shard by replaying their original submissions on the
healthy ones.
"""

import os
import signal

import pytest

from repro.cluster import EngineSpec, ShardCoordinator
from repro.cluster.placement import HealthAwarePlacement, make_placement
from repro.dashboard.cluster import render_cluster
from repro.errors import ClusterError, EngineOverloadedError

pytestmark = pytest.mark.overload

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"


def spec(**engine_kwargs) -> EngineSpec:
    kwargs = {"n_products": 8, "filter_batch": 1, "seed": 13}
    if engine_kwargs:
        kwargs["engine_kwargs"] = engine_kwargs
    return EngineSpec(
        factory="repro.experiments.harness:build_products_engine", kwargs=kwargs
    )


class TestHealthAwarePlacement:
    def test_round_robins_over_the_healthy_pool(self):
        placement = HealthAwarePlacement(3)
        assert [placement.shard_of(i, f"cq{i}") for i in range(6)] == [0, 1, 2, 0, 1, 2]
        placement.set_healthy(1, False)
        assert placement.healthy_shards == (0, 2)
        assert [placement.shard_of(i, f"cq{i}") for i in range(4)] == [0, 2, 0, 2]
        placement.set_healthy(1, True)
        assert [placement.shard_of(i, f"cq{i}") for i in range(3)] == [0, 1, 2]

    def test_everything_unhealthy_falls_back_to_all_shards(self):
        placement = HealthAwarePlacement(2)
        placement.set_healthy(0, False)
        placement.set_healthy(1, False)
        # Degraded everywhere is degraded nowhere: keep serving.
        assert placement.healthy_shards == (0, 1)
        assert placement.shard_of(1, "cq1") == 1

    def test_validates_shard_ids(self):
        placement = HealthAwarePlacement(2)
        with pytest.raises(ClusterError):
            placement.set_healthy(2, False)

    def test_make_placement_knows_health(self):
        placement = make_placement("health", 4, 0)
        assert isinstance(placement, HealthAwarePlacement)
        with pytest.raises(ClusterError, match="health"):
            make_placement("nope", 4, 0)


class TestHealthRouting:
    def test_marked_shard_stops_receiving_new_queries(self):
        with ShardCoordinator(spec(), 3, placement="health") as cluster:
            cluster.mark_shard_unhealthy(1)
            handles = cluster.submit_many([{"sql": FILTER_SQL} for _ in range(4)])
            assert [handle.shard for handle in handles] == [0, 2, 0, 2]
            assert cluster.healthy_shards() == [0, 2]
            cluster.mark_shard_healthy(1)
            more = cluster.submit_many([{"sql": FILTER_SQL} for _ in range(3)])
            assert sorted(handle.shard for handle in more) == [0, 1, 2]
            statuses = cluster.drain()
            assert all(status == "completed" for status in statuses.values())

    def test_mark_validates_shard_ids(self):
        with ShardCoordinator(spec(), 2) as cluster:
            with pytest.raises(ClusterError):
                cluster.mark_shard_unhealthy(2)
            with pytest.raises(ClusterError):
                cluster.mark_shard_healthy(-1)

    def test_stats_carry_health_records_and_the_dashboard_renders_them(self):
        with ShardCoordinator(spec(), 2, placement="health") as cluster:
            cluster.submit(FILTER_SQL)
            cluster.mark_shard_unhealthy(1)
            stats = cluster.stats()
        assert len(stats.health) == 2
        for record in stats.health:
            assert record["samples"] > 0
            assert record["latency_ewma"] > 0.0
            assert record["heartbeat_age"] is not None
        assert stats.health[0]["healthy"] is True
        assert stats.health[1]["healthy"] is False
        text = render_cluster(stats, panels=[])
        assert "health shard 0: ok" in text
        assert "health shard 1: DEGRADED" in text

    def test_poll_interval_is_configurable_and_validated(self):
        with ShardCoordinator(spec(), 1, poll_interval=0.02) as cluster:
            assert cluster.poll_interval == 0.02
            cluster.submit(FILTER_SQL)
            assert cluster.drain()["cq1"] == "completed"
        with pytest.raises(ClusterError):
            ShardCoordinator(spec(), 1, poll_interval=0.0)

    def test_crash_threshold_is_validated(self):
        with pytest.raises(ClusterError):
            ShardCoordinator(spec(), 1, unhealthy_crash_threshold=0)


class TestRebalancePending:
    def test_pending_queries_move_and_still_complete(self):
        # One admission slot per worker: with four submissions on two
        # shards, each worker holds one active and one pending query.
        with ShardCoordinator(
            spec(max_concurrent_queries=1), 2, placement="health"
        ) as cluster:
            handles = cluster.submit_many([{"sql": FILTER_SQL} for _ in range(4)])
            cluster.mark_shard_unhealthy(0)
            moved = cluster.rebalance_pending(0)
            assert moved == 1  # the unstarted query; the admitted one stays
            assert cluster.rebalanced == 1
            # The moved query is now routed to (and answered by) shard 1.
            moved_handle = handles[2]  # cq3, shard 0's pending submission
            assert cluster._routes[moved_handle.query_id] == 1
            statuses = cluster.drain()
            assert all(status == "completed" for status in statuses.values())
            rows = moved_handle.results()
            assert rows  # results come back through the new route
            assert cluster.stats().rebalanced == 1

    def test_rebalance_with_nothing_pending_is_a_no_op(self):
        with ShardCoordinator(spec(), 2) as cluster:
            cluster.submit(FILTER_SQL)
            assert cluster.rebalance_pending(0) == 0
            assert cluster.rebalanced == 0

    def test_rebalance_needs_another_healthy_shard(self):
        with ShardCoordinator(
            spec(max_concurrent_queries=1), 1, placement="health"
        ) as cluster:
            cluster.submit_many([{"sql": FILTER_SQL} for _ in range(2)])
            cluster.mark_shard_unhealthy(0)
            with pytest.raises(ClusterError, match="no other healthy shard"):
                cluster.rebalance_pending(0)

    def test_rebalanced_cluster_is_deterministic(self):
        def fingerprint():
            with ShardCoordinator(
                spec(max_concurrent_queries=1), 2, placement="health"
            ) as cluster:
                cluster.submit_many([{"sql": FILTER_SQL} for _ in range(4)])
                cluster.mark_shard_unhealthy(0)
                cluster.rebalance_pending(0)
                cluster.drain()
                return cluster.fingerprint()

        assert fingerprint() == fingerprint()


class TestCrashDrivenHealth:
    def test_crashes_past_the_threshold_mark_the_shard(self, tmp_path):
        with ShardCoordinator(
            spec(),
            2,
            placement="health",
            durability_root=tmp_path,
            unhealthy_crash_threshold=1,
        ) as cluster:
            cluster.submit_many([{"sql": FILTER_SQL} for _ in range(2)])
            process = cluster._shards[0].process
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=10)
            statuses = cluster.drain()  # heals shard 0, then finishes
            assert all(status == "completed" for status in statuses.values())
            assert cluster.heals == 1
            assert cluster.health[0].crashes == 1
            # The crash crossed the threshold: shard 0 is out of the pool.
            assert cluster.healthy_shards() == [1]
            assert all(
                handle.shard == 1
                for handle in cluster.submit_many([{"sql": FILTER_SQL} for _ in range(2)])
            )


class TestClusterBackpressure:
    def test_worker_overload_surfaces_with_retry_after(self):
        with ShardCoordinator(
            spec(
                max_concurrent_queries=1,
                admission_queue_limit=0,
                overload_retry_after=7.5,
            ),
            1,
        ) as cluster:
            cluster.submit(FILTER_SQL)
            with pytest.raises(EngineOverloadedError) as excinfo:
                cluster.submit(FILTER_SQL)
            assert excinfo.value.retry_after == 7.5
            assert cluster.drain()["cq1"] == "completed"
