"""Kill-at-K recovery invariants: every crash point recovers byte-identically.

The invariant under test is the strongest the engine can offer: for ANY
WAL append K and ANY fsync policy, killing a durable run at K and
recovering from disk yields an engine whose ``fingerprint_engine`` output
equals an uninterrupted, non-durable run of the submissions that made it
into the log.  Determinism turns "recovery looks right" into "recovery is
bit-exact".
"""

import random

import pytest

from repro.engine import QurkEngine
from repro.testing.crashpoints import (
    all_crash_scenarios,
    corrupt_tail,
    count_wal_events,
    crash_points,
    faulty_crash_scenario,
    plain_crash_scenario,
    quality_crash_scenario,
    recovered_fingerprint,
    recovered_query_count,
    reference_fingerprint,
    run_durable,
)

SCENARIOS = {scenario.name: scenario for scenario in all_crash_scenarios()}


def _assert_crash_recovers_exactly(scenario, tmp_path, *, crash_at, fsync):
    run_durable(scenario, tmp_path, fsync=fsync, crash_at=crash_at)
    result = QurkEngine.recover(tmp_path, fsync=fsync)
    n = recovered_query_count(result)
    assert recovered_fingerprint(result) == reference_fingerprint(scenario, n)
    return result


class TestKillAtKSweep:
    """Seeded crash-point schedules over each scenario's full event range."""

    @pytest.mark.parametrize("name", list(SCENARIOS))
    def test_sweep(self, name, tmp_path):
        scenario = SCENARIOS[name]
        total = count_wal_events(scenario)
        assert total > 20, "scenario too small to be an interesting sweep"
        rng = random.Random(hash(name) & 0xFFFF)
        for crash_at in crash_points(total, 5, seed=rng.randint(0, 1_000)):
            fsync = rng.choice(("always", "interval", "off"))
            directory = tmp_path / f"k{crash_at}"
            _assert_crash_recovers_exactly(
                scenario, directory, crash_at=crash_at, fsync=fsync
            )

    def test_crash_on_very_first_append(self, tmp_path):
        """K=1 dies inside the first query() — before its group commit.

        The submission was still in the WAL buffer, so recovery yields an
        empty (but consistent) engine; with ``fsync="always"`` the same
        crash point keeps the submission.
        """
        result = _assert_crash_recovers_exactly(
            plain_crash_scenario(), tmp_path / "interval", crash_at=1, fsync="interval"
        )
        assert recovered_query_count(result) == 0
        result = _assert_crash_recovers_exactly(
            plain_crash_scenario(), tmp_path / "always", crash_at=1, fsync="always"
        )
        assert recovered_query_count(result) == 1

    def test_drain_barrier_commits_pending_submissions(self, tmp_path):
        """Crashing right past a drain record never loses its submissions."""
        scenario = plain_crash_scenario()
        # Find the first drain record's LSN, then crash just after it.
        probe = tmp_path / "probe"
        run_durable(scenario, probe, fsync="off")
        from repro.storage.wal import WriteAheadLog

        info, _ = WriteAheadLog.scan(probe / "wal.log")
        drain_lsn = next(r.lsn for r in info.records if r.type == "drain")
        n_before = sum(
            1
            for r in info.records
            if r.type == "query_submitted" and r.lsn < drain_lsn
        )
        assert n_before >= 1
        result = _assert_crash_recovers_exactly(
            scenario, tmp_path / "crash", crash_at=drain_lsn + 1, fsync="off"
        )
        assert recovered_query_count(result) >= n_before

    def test_crash_beyond_the_end_recovers_the_full_run(self, tmp_path):
        scenario = plain_crash_scenario()
        result = _assert_crash_recovers_exactly(
            scenario, tmp_path, crash_at=10_000, fsync="off"
        )
        assert recovered_query_count(result) == scenario.total_submissions


class TestCrashSmoke:
    """The fast fixed-point subset CI's crash-matrix job runs by name."""

    @pytest.mark.parametrize("crash_at", [1, 40, 120])
    def test_fixed_points(self, crash_at, tmp_path):
        _assert_crash_recovers_exactly(
            plain_crash_scenario(), tmp_path, crash_at=crash_at, fsync="interval"
        )

    def test_corruption_case(self, tmp_path):
        scenario = plain_crash_scenario()
        run_durable(scenario, tmp_path, fsync="always")
        corrupt_tail(tmp_path / "wal.log", mode="truncate", seed=5)
        result = QurkEngine.recover(tmp_path)
        assert result.corruption is not None
        assert result.truncated_bytes > 0
        n = recovered_query_count(result)
        assert recovered_fingerprint(result) == reference_fingerprint(scenario, n)


class TestCorruptedTails:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_damage_is_detected_and_recovery_is_clean(self, mode, seed, tmp_path):
        scenario = faulty_crash_scenario()
        run_durable(scenario, tmp_path, fsync="always")
        corrupt_tail(tmp_path / "wal.log", mode=mode, seed=seed)
        result = QurkEngine.recover(tmp_path)
        assert result.corruption is not None
        n = recovered_query_count(result)
        assert recovered_fingerprint(result) == reference_fingerprint(scenario, n)

    def test_double_crash_recover_crash_recover(self, tmp_path):
        """Recovery itself is durable: crash again after recovering."""
        scenario = quality_crash_scenario()
        run_durable(scenario, tmp_path, fsync="interval", crash_at=30)
        first = QurkEngine.recover(tmp_path)
        first.engine.journal.wal.simulate_crash()
        second = QurkEngine.recover(tmp_path)
        n = recovered_query_count(second)
        assert recovered_fingerprint(second) == reference_fingerprint(scenario, n)
        assert recovered_fingerprint(second) == recovered_fingerprint(first)
