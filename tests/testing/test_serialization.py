"""Cluster wire format: framing, value tagging, schema/row/query round trips.

The shard protocol is length-prefixed JSON, with tuples tagged
``{"__tuple__": [...]}`` so crowd answers survive the trip.  These tests pin
the exactness guarantee the coordinator relies on: anything a worker encodes
decodes back to an equal value on the other side.
"""

import pytest

from repro.cluster.serialization import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_message,
    decode_query,
    decode_rows,
    decode_schema,
    encode_message,
    encode_query,
    encode_rows,
    encode_schema,
    frame_message,
)
from repro.core.exec.context import QueryConfig
from repro.errors import ClusterError
from repro.experiments import build_products_engine
from repro.storage import DataType, Schema
from repro.storage.row import Row


class TestFraming:
    def test_message_round_trip(self):
        message = {"op": "submit", "sql": "SELECT 1", "nested": {"a": [1, 2.5, None, True]}}
        assert decode_message(encode_message(message)) == message

    def test_frame_decoder_reassembles_byte_by_byte(self):
        messages = [{"op": "ping"}, {"op": "pump", "max_passes": 3}]
        stream = b"".join(frame_message(m) for m in messages)
        decoder = FrameDecoder()
        received = []
        for offset in range(len(stream)):
            received.extend(decoder.feed(stream[offset : offset + 1]))
        assert received == messages
        assert decoder.pending_bytes == 0

    def test_frame_decoder_handles_many_messages_in_one_chunk(self):
        messages = [{"op": "status", "query_id": f"cq{i}"} for i in range(10)]
        decoder = FrameDecoder()
        assert decoder.feed(b"".join(frame_message(m) for m in messages)) == messages

    def test_junk_payload_raises_cluster_error(self):
        with pytest.raises(ClusterError, match="undecodable"):
            decode_message(b"\xff\xfenot json")
        with pytest.raises(ClusterError, match="must be an object"):
            decode_message(b"[1, 2, 3]")

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder()
        huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ClusterError, match="exceeds"):
            decoder.feed(huge)


class TestValueTagging:
    def test_tuples_survive_json(self):
        schema = Schema.of(("answer", DataType.ANY))
        row = Row.unchecked(schema, (("yes", 0.9, ("nested", 1)),))
        (decoded,) = decode_rows(encode_rows([row]))
        assert decoded.values == row.values
        assert isinstance(decoded.values[0], tuple)
        assert isinstance(decoded.values[0][2], tuple)

    def test_tuples_inside_lists_and_dicts(self):
        schema = Schema.of(("answer", DataType.ANY))
        value = {"votes": [("a", 1), ("b", 2)], "meta": {"pair": (True, None)}}
        row = Row.unchecked(schema, (value,))
        (decoded,) = decode_rows(encode_rows([row]))
        assert decoded.values == row.values

    def test_plain_dict_without_tuple_tag_is_untouched(self):
        schema = Schema.of(("answer", DataType.ANY))
        value = {"__tuple__": [1, 2], "extra": "key"}  # two keys: not a tag
        row = Row.unchecked(schema, (value,))
        (decoded,) = decode_rows(encode_rows([row]))
        assert decoded.values[0] == value


class TestSchemaAndRows:
    def test_workload_table_rows_round_trip(self):
        """Every row of the experiment harness's products table is exact."""
        engine = build_products_engine(n_products=8, seed=7).engine
        table = engine.database.table("products")
        rows = table.rows()
        assert rows
        decoded = decode_rows(encode_rows(rows))
        assert len(decoded) == len(rows)
        for original, copy in zip(rows, decoded):
            assert copy.schema is not None
            assert copy.values == original.values
            assert copy.to_dict() == original.to_dict()

    def test_schema_round_trip_preserves_types_and_nullability(self):
        engine = build_products_engine(n_products=2, seed=7).engine
        schema = engine.database.table("products").schema
        decoded = decode_schema(encode_schema(schema))
        assert [c.name for c in decoded.columns] == [c.name for c in schema.columns]
        assert [c.data_type for c in decoded.columns] == [
            c.data_type for c in schema.columns
        ]
        assert [c.nullable for c in decoded.columns] == [c.nullable for c in schema.columns]

    def test_empty_rows_round_trip(self):
        assert decode_rows(encode_rows([])) == []

    def test_bad_schema_payload_raises_cluster_error(self):
        with pytest.raises(ClusterError, match="undecodable schema"):
            decode_schema([["name", "no-such-type", False]])


class TestQuerySubmissions:
    def test_plain_query_round_trip(self):
        payload = encode_query("SELECT 1", query_id="cq1")
        # The payload must be JSON-pure: it crosses the wire inside a frame.
        assert decode_message(encode_message(payload)) == payload
        submission = decode_query(payload)
        assert submission["query_id"] == "cq1"
        assert submission["sql"] == "SELECT 1"
        assert submission["budget"] is None
        assert submission["priority"] == 1.0
        assert submission["config"] is None

    def test_config_rehydrates_as_query_config(self):
        config = QueryConfig(budget=12.5, default_assignments=5, adaptive=False)
        payload = encode_query(
            "SELECT name FROM products",
            query_id="cq2",
            budget=12.5,
            priority=2.0,
            config=config,
        )
        payload = decode_message(encode_message(payload))  # through the wire
        submission = decode_query(payload)
        assert submission["config"] == config
        assert submission["budget"] == 12.5
        assert submission["priority"] == 2.0

    def test_missing_fields_raise_cluster_error(self):
        with pytest.raises(ClusterError, match="missing field"):
            decode_query({"sql": "SELECT 1"})
        with pytest.raises(ClusterError, match="undecodable query config"):
            decode_query(
                {"query_id": "cq1", "sql": "SELECT 1", "config": {"no_such_field": 1}}
            )
