"""The chaos harness run against its canned scenario library.

Every scenario runs a whole workload query under seeded fault injection and
must end invariant-clean (budget conservation, HIT accounting, no lost or
duplicated deliveries) with the statuses it declares.  The cross-scenario
determinism sweep is marked ``slow`` (it runs everything twice); the
individual scenario tests stay in the fast tier.
"""

import pytest

from repro.testing import (
    abandonment_scenario,
    all_scenarios,
    assert_deterministic,
    breaker_recovery_scenario,
    duplicate_and_late_scenario,
    exhaustion_scenario,
    expiry_requeue_scenario,
    run_scenario,
    spammer_quality_scenario,
)


@pytest.mark.parametrize(
    "factory",
    [
        exhaustion_scenario,
        expiry_requeue_scenario,
        abandonment_scenario,
        duplicate_and_late_scenario,
        spammer_quality_scenario,
        breaker_recovery_scenario,
    ],
    ids=lambda factory: factory.__name__,
)
def test_scenario_holds_every_invariant(factory):
    result = run_scenario(factory())
    assert result.ok, "\n".join([result.summary()] + result.violations)


def test_exhaustion_scenario_reports_stall_with_no_rows():
    result = run_scenario(exhaustion_scenario())
    assert result.statuses == ["stalled"]
    assert result.rows == [[]]
    stats = result.run.engine.platform.stats
    assert stats.hits_expired == stats.hits_created  # nobody ever picked up


def test_expiry_scenario_actually_expired_and_requeued():
    result = run_scenario(expiry_requeue_scenario())
    assert result.run.engine.platform.stats.hits_expired >= 1
    assert result.run.engine.task_manager.stats.tasks_requeued >= 1
    assert result.statuses == ["completed"]


def test_duplicate_scenario_ignored_duplicates_without_double_delivery():
    result = run_scenario(duplicate_and_late_scenario())
    assert result.run.engine.platform.stats.duplicate_submissions_ignored >= 1
    assert result.ok, "\n".join(result.violations)


def test_spammer_scenario_engages_quality_control():
    result = run_scenario(spammer_quality_scenario())
    manager_stats = result.run.engine.task_manager.stats
    assert manager_stats.gold_probes_posted >= 1
    assert manager_stats.early_stopped_tasks >= 1
    assert result.run.engine.reputation.tracked_workers()


@pytest.mark.overload
def test_breaker_scenario_runs_a_full_cycle_and_still_completes():
    result = run_scenario(breaker_recovery_scenario())
    breaker = result.run.engine.breaker
    assert breaker is not None
    # The breaker must cycle all the way: closed -> open -> half-open ->
    # closed, ending closed with the query complete and all rows delivered.
    assert breaker.stats.trips >= 1
    assert breaker.stats.reopens >= 1
    assert breaker.stats.closes >= 1
    assert breaker.stats.posts_blocked >= 1
    assert breaker.state == "closed"
    assert result.statuses == ["completed"]
    assert result.rows[0], "recovery should still deliver rows"
    # While the breaker was open the market kept expiring HITs; the pause
    # must not strand work or leak money (run_scenario already checked the
    # budget-conservation and no-stranded-work invariants via result.ok).
    assert result.run.engine.platform.stats.hits_expired >= 1
    assert result.ok, "\n".join(result.violations)


@pytest.mark.overload
def test_breaker_scenario_is_deterministic():
    result = assert_deterministic(breaker_recovery_scenario(), runs=2)
    assert result.ok, "\n".join(result.violations)


@pytest.mark.slow
def test_every_scenario_is_bit_identical_across_same_seed_runs():
    for scenario in all_scenarios():
        result = assert_deterministic(scenario, runs=2)
        assert result.ok, "\n".join([scenario.name] + result.violations)
