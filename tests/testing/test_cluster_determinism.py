"""Cluster determinism: 1 shard == in-process engine; N shards stable.

The determinism contract of the shard-per-process runtime:

* A 1-shard cluster produces a fingerprint *byte-identical* to an in-process
  engine built from the same recipe and fed the same queries — the worker's
  ``drain`` op reproduces exactly the chaos harness's driving sequence.
* An N-shard cluster is fingerprint-stable run to run under the same seed,
  because placement is deterministic and every shard is an independent
  same-seed marketplace.

Fingerprints are :func:`repro.testing.chaos.fingerprint_engine` structures
(statuses, result rows, HIT/assignment counters, spend), JSON-stable so they
compare equal across the process boundary.
"""

import pytest

from repro.cluster import (
    EngineSpec,
    HashPlacement,
    RoundRobinPlacement,
    ShardCoordinator,
    ShardWorker,
    make_placement,
)
from repro.cluster.serialization import encode_query
from repro.errors import ClusterError
from repro.experiments import build_products_engine
from repro.testing.chaos import fingerprint_engine

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"
N_QUERIES = 6
SPEC = EngineSpec(
    factory="repro.experiments.harness:build_products_engine",
    kwargs={"n_products": 10, "filter_batch": 1, "seed": 13},
)


def in_process_fingerprint(n_queries: int = N_QUERIES) -> dict:
    """The same workload driven exactly like a shard worker drives it."""
    engine = build_products_engine(n_products=10, filter_batch=1, seed=13).engine
    handles = [engine.query(FILTER_SQL) for _ in range(n_queries)]
    engine.scheduler.drain()
    engine.clock.run_until_idle()
    statuses = [handle.status.value for handle in handles]
    rows = [[row.to_dict() for row in handle.results()] for handle in handles]
    return fingerprint_engine(engine, statuses, rows)


def cluster_fingerprints(n_shards: int, n_queries: int = N_QUERIES) -> list[dict]:
    with ShardCoordinator(SPEC, n_shards) as cluster:
        cluster.submit_many([{"sql": FILTER_SQL} for _ in range(n_queries)])
        statuses = cluster.drain()
        assert all(status == "completed" for status in statuses.values())
        return cluster.fingerprint()


class TestOneShardEqualsInProcess:
    def test_fingerprints_identical(self):
        (cluster_fp,) = cluster_fingerprints(1)
        assert cluster_fp == in_process_fingerprint()

    def test_in_process_worker_equals_in_process_engine(self):
        """The same equality, without forking: ShardWorker.handle directly."""
        worker = ShardWorker(SPEC, shard_id=0)
        queries = [
            encode_query(FILTER_SQL, query_id=f"cq{i + 1}") for i in range(N_QUERIES)
        ]
        assert worker.handle({"op": "submit_many", "queries": queries})["ok"]
        drained = worker.handle({"op": "drain"})
        assert drained["ok"]
        reply = worker.handle({"op": "fingerprint"})
        assert reply["fingerprint"] == in_process_fingerprint()


class TestNShardStability:
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_same_seed_runs_identical(self, n_shards):
        assert cluster_fingerprints(n_shards) == cluster_fingerprints(n_shards)

    def test_shards_split_the_work(self):
        fingerprints = cluster_fingerprints(2)
        per_shard = [len(fp["statuses"]) for fp in fingerprints]
        assert per_shard == [N_QUERIES // 2, N_QUERIES // 2]
        # Every query completed and cost money on its own shard.
        assert all(fp["total_cost"] > 0 for fp in fingerprints)

    def test_cluster_totals_match_in_process_totals(self):
        """Sharding must not change what the crowd does in aggregate."""
        reference = in_process_fingerprint()
        with ShardCoordinator(SPEC, 3) as cluster:
            cluster.submit_many([{"sql": FILTER_SQL} for _ in range(N_QUERIES)])
            cluster.drain()
            stats = cluster.stats()
        assert stats.totals["queries"] == N_QUERIES
        assert stats.totals["hits_created"] == reference["hits_created"]
        assert round(stats.totals["total_cost"], 9) == reference["total_cost"]


class TestPlacement:
    def test_round_robin_is_admission_order(self):
        placement = RoundRobinPlacement(3)
        assert [placement.shard_of(i, f"cq{i + 1}") for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_hash_placement_is_seed_deterministic(self):
        a = HashPlacement(4, seed=9)
        b = HashPlacement(4, seed=9)
        shards = [a.shard_of(i, f"cq{i + 1}") for i in range(32)]
        assert shards == [b.shard_of(i, f"cq{i + 1}") for i in range(32)]
        assert all(0 <= shard < 4 for shard in shards)
        assert len(set(shards)) > 1  # actually spreads

    def test_make_placement_rejects_unknown_kind(self):
        with pytest.raises(ClusterError):
            make_placement("random", 2, 0)

    def test_hash_placement_routes_cluster_queries(self):
        """End to end: hash placement still completes and stays stable."""

        def run() -> list[dict]:
            with ShardCoordinator(SPEC, 2, placement="hash", seed=5) as cluster:
                cluster.submit_many([{"sql": FILTER_SQL} for _ in range(N_QUERIES)])
                statuses = cluster.drain()
                assert all(status == "completed" for status in statuses.values())
                return cluster.fingerprint()

        assert run() == run()
