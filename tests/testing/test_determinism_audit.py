"""Determinism audit: the flagship experiments replayed under fault injection.

E1 (the end-to-end Query 1 run) and E5 (the redundancy sweep's filter) are
run twice with the same seed and faults switched on; HIT counts, platform
fault counters, total cost and the result rows themselves must be
bit-identical.  Every random draw in the crowd substrate flows from an
explicit seed (worker pool, per-assignment streams, the fault stream, the
quality-control stream) — this audit is the tripwire for any future
unseeded ``random.Random()`` sneaking in.
"""

import pytest

from repro.crowd import FaultProfile, PopulationMix
from repro.experiments.harness import (
    QUERY1_SQL,
    build_companies_engine,
    build_products_engine,
)

FAULTS = FaultProfile(
    seed=33, abandonment_rate=0.2, duplicate_rate=0.3, late_rate=0.15, hit_lifetime=3600.0
)


def _fingerprint(engine, handle, rows):
    stats = engine.platform.stats
    return {
        "rows": [sorted(row.to_dict().items()) for row in rows],
        "hits_created": stats.hits_created,
        "hits_expired": stats.hits_expired,
        "assignments_submitted": stats.assignments_submitted,
        "assignments_abandoned": stats.assignments_abandoned,
        "duplicates_ignored": stats.duplicate_submissions_ignored,
        "late_dropped": stats.late_submissions_dropped,
        "total_cost": round(engine.total_crowd_cost, 9),
        "query_cost": round(handle.total_cost, 9),
    }


def run_e1(seed=41):
    """The E1 experiment (Query 1 end to end), shrunk, with faults on."""
    run = build_companies_engine(n_companies=12, assignments=3, seed=seed, fault_profile=FAULTS)
    handle = run.engine.query(QUERY1_SQL)
    rows = handle.wait()
    return _fingerprint(run.engine, handle, rows)


def run_e5(seed=501, assignments=3):
    """The E5 redundancy experiment's filter run, with faults on."""
    run = build_products_engine(
        n_products=20,
        assignments=assignments,
        filter_batch=4,
        population_mix=PopulationMix(diligent=0.35, noisy=0.30, lazy=0.10, spammer=0.25),
        seed=seed,
        fault_profile=FAULTS,
    )
    handle = run.engine.query("SELECT name FROM products WHERE isTargetColor(name)")
    rows = handle.wait()
    return _fingerprint(run.engine, handle, rows)


@pytest.mark.slow
def test_e1_is_deterministic_under_faults():
    first, second = run_e1(), run_e1()
    assert first == second
    # The faults actually fired (otherwise this audit proves nothing).
    assert (
        first["assignments_abandoned"] + first["duplicates_ignored"] + first["hits_expired"] > 0
    )


@pytest.mark.slow
def test_e5_is_deterministic_under_faults():
    first, second = run_e5(), run_e5()
    assert first == second
    assert (
        first["assignments_abandoned"] + first["duplicates_ignored"] + first["hits_expired"] > 0
    )


@pytest.mark.slow
def test_different_seeds_actually_diverge():
    """Guards against the fingerprint being insensitive (always equal)."""
    assert run_e5(seed=501) != run_e5(seed=502)
