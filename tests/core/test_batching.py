"""Unit tests for batching policies."""

import pytest

from repro.core.tasks.batching import AdaptiveBatching, FixedBatching, NoBatching, batches_of
from repro.core.tasks.spec import TaskSpec, TaskType, YesNoResponse
from repro.core.tasks.task import Task, TaskKind
from repro.errors import TaskError


SPEC = TaskSpec(name="f", task_type=TaskType.FILTER, text="?", response=YesNoResponse())


def make_tasks(n):
    return [Task(kind=TaskKind.FILTER, spec=SPEC, payload={}, callback=lambda r: None) for _ in range(n)]


class TestNoBatching:
    def test_always_one_per_hit(self):
        policy = NoBatching()
        assert policy.batch_size(10) == 1
        assert policy.should_flush(1, force=False)
        assert not policy.should_flush(0, force=True)
        assert "1 task/HIT" in policy.describe()


class TestFixedBatching:
    def test_flushes_only_full_batches_unless_forced(self):
        policy = FixedBatching(5)
        assert not policy.should_flush(3, force=False)
        assert policy.should_flush(3, force=True)
        assert policy.should_flush(5, force=False)
        assert policy.batch_size(3) == 3
        assert policy.batch_size(12) == 5

    def test_invalid_size(self):
        with pytest.raises(TaskError):
            FixedBatching(0)

    def test_describe_mentions_size(self):
        assert "7 tasks/HIT" in FixedBatching(7).describe()


class TestAdaptiveBatching:
    def test_grows_on_agreement_and_shrinks_on_disagreement(self):
        policy = AdaptiveBatching(initial_size=2, max_size=6, target_agreement=0.8)
        for _ in range(10):
            policy.observe_agreement(0.95)
        assert policy.current_size == 6
        policy.observe_agreement(0.4)
        assert policy.current_size == 4
        for _ in range(10):
            policy.observe_agreement(0.1)
        assert policy.current_size == 1

    def test_invalid_configuration(self):
        with pytest.raises(TaskError):
            AdaptiveBatching(initial_size=5, max_size=2)

    def test_flush_behaviour_uses_current_size(self):
        policy = AdaptiveBatching(initial_size=3, max_size=5)
        assert not policy.should_flush(2, force=False)
        assert policy.should_flush(3, force=False)
        assert policy.should_flush(1, force=True)
        assert not policy.should_flush(0, force=True)


class TestBatchesOf:
    def test_splits_into_consecutive_chunks(self):
        tasks = make_tasks(7)
        batches = batches_of(tasks, 3)
        assert [len(b) for b in batches] == [3, 3, 1]
        assert batches[0][0] is tasks[0]

    def test_invalid_size(self):
        with pytest.raises(TaskError):
            batches_of(make_tasks(2), 0)
