"""Unit/integration tests for the Task Manager."""

import pytest

from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.batching import FixedBatching
from repro.core.tasks.spec import (
    FormResponse,
    Parameter,
    ReturnField,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.core.tasks.task import ResultSource, Task, TaskKind
from repro.core.tasks.task_cache import TaskCache
from repro.core.tasks.task_manager import TaskManager
from repro.core.tasks.task_model import TaskModelRegistry
from repro.crowd import (
    CallbackOracle,
    MTurkSimulator,
    PopulationMix,
    SimulationClock,
    WorkerPool,
)
from repro.errors import BudgetExceededError


FILTER_SPEC = TaskSpec(
    name="isRed",
    task_type=TaskType.FILTER,
    text="Is %s red?",
    response=YesNoResponse(),
    parameters=(Parameter("name"),),
    price=0.01,
    assignments=3,
    feature_extractor=lambda payload: payload.get("features"),
)

FINDCEO_SPEC = TaskSpec(
    name="findCEO",
    task_type=TaskType.QUESTION,
    text="Find the CEO for %s",
    response=FormResponse((("CEO", "String"),)),
    parameters=(Parameter("companyName"),),
    returns=(ReturnField("CEO"),),
    price=0.02,
    assignments=3,
)

ORACLE = CallbackOracle(
    predicate=lambda item: item.payload.get("is_red", False),
    form=lambda item, field: f"CEO of {item.payload.get('companyName')}",
)


def build_manager(*, mix=None, cache=None, models=None, seed=1):
    clock = SimulationClock()
    pool = WorkerPool(size=50, seed=seed, mix=mix or PopulationMix(diligent=1, noisy=0, lazy=0, spammer=0))
    platform = MTurkSimulator(clock, pool, ORACLE)
    statistics = StatisticsManager()
    budget = BudgetLedger()
    manager = TaskManager(platform, statistics, budget, cache=cache, models=models)
    return clock, platform, statistics, budget, manager


def filter_task(manager_results, name="mug", is_red=True, query_id="q1", cache_key=None):
    return Task(
        kind=TaskKind.FILTER,
        spec=FILTER_SPEC,
        payload={"args": (name,), "name": name, "is_red": is_red},
        callback=manager_results.append,
        cache_key=cache_key,
        query_id=query_id,
    )


class TestCrowdPath:
    def test_submit_flush_complete(self):
        clock, platform, statistics, _budget, manager = build_manager()
        results = []
        manager.submit(filter_task(results, is_red=True))
        assert manager.pending_tasks() == 1
        posted = manager.flush()
        assert posted == 1
        assert manager.inflight_hits() == 1
        clock.run_until_idle()
        assert len(results) == 1
        result = results[0]
        assert result.source is ResultSource.CROWD
        assert result.reduced is True
        assert len(result.answers) == 3
        assert result.cost == pytest.approx(3 * (0.01 + 0.005))
        assert result.latency > 0
        assert statistics.spec("isRed").crowd_tasks == 1
        assert statistics.query("q1").spent == pytest.approx(result.cost)
        assert not manager.has_outstanding_work()

    def test_batching_policy_groups_tasks_into_one_hit(self):
        clock, platform, _stats, _budget, manager = build_manager()
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(5))
        results = []
        for index in range(5):
            manager.submit(filter_task(results, name=f"item{index}", is_red=index % 2 == 0))
        assert manager.flush() == 1
        assert platform.stats.hits_created == 1
        clock.run_until_idle()
        assert len(results) == 5
        reduced = [r.reduced for r in results]
        assert reduced == [True, False, True, False, True]

    def test_partial_batches_flush_only_when_forced(self):
        _clock, platform, _stats, _budget, manager = build_manager()
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(10))
        results = []
        for index in range(4):
            manager.submit(filter_task(results, name=f"n{index}"))
        assert manager.flush(force=False) == 0
        assert manager.flush(force=True) == 1
        assert platform.stats.hits_created == 1

    def test_worker_votes_recorded(self):
        clock, _platform, statistics, _budget, manager = build_manager()
        results = []
        manager.submit(filter_task(results))
        manager.flush()
        clock.run_until_idle()
        assert sum(stats.votes for stats in statistics._workers.values()) == 3


class TestCachePath:
    def test_cache_hit_answers_without_posting(self):
        clock, platform, statistics, _budget, manager = build_manager(cache=TaskCache())
        results = []
        manager.submit(filter_task(results, cache_key=("mug",)))
        manager.flush()
        clock.run_until_idle()
        assert platform.stats.hits_created == 1
        manager.submit(filter_task(results, cache_key=("mug",), query_id="q2"))
        assert len(results) == 2
        assert results[1].source is ResultSource.CACHE
        assert results[1].cost == 0.0
        assert platform.stats.hits_created == 1
        assert statistics.query("q2").cache_hits == 1


class TestModelPath:
    def test_trusted_model_short_circuits_the_crowd(self):
        models = TaskModelRegistry()
        model = models.register_default(
            FILTER_SPEC, min_observations=10, trust_accuracy=0.8, confidence_threshold=0.3,
            learning_rate=0.5,
        )
        clock, platform, statistics, _budget, manager = build_manager(models=models)
        results = []
        # Train through the crowd on a separable concept.
        for index in range(40):
            is_red = index % 2 == 0
            task = Task(
                kind=TaskKind.FILTER,
                spec=FILTER_SPEC,
                payload={
                    "args": (f"item{index}",),
                    "name": f"item{index}",
                    "is_red": is_red,
                    "features": [1.0, 0.0] if is_red else [0.0, 1.0],
                },
                callback=results.append,
                query_id="train",
            )
            manager.submit(task)
        manager.flush()
        clock.run_until_idle()
        assert model.is_trusted
        hits_before = platform.stats.hits_created
        task = Task(
            kind=TaskKind.FILTER,
            spec=FILTER_SPEC,
            payload={"args": ("new",), "name": "new", "is_red": True, "features": [1.0, 0.0]},
            callback=results.append,
            query_id="q9",
        )
        manager.submit(task)
        assert results[-1].source is ResultSource.MODEL
        assert results[-1].reduced is True
        assert platform.stats.hits_created == hits_before
        assert statistics.query("q9").model_answers == 1
        assert model.stats.dollars_saved > 0


class TestBudgetEnforcement:
    def test_posting_stops_when_budget_exceeded(self):
        clock, _platform, _stats, budget, manager = build_manager()
        budget.register("q1", 0.05)  # one HIT costs 3 * 0.015 = 0.045
        results = []
        manager.submit(filter_task(results, name="a"))
        manager.submit(filter_task(results, name="b"))
        with pytest.raises(BudgetExceededError):
            manager.flush()
        # The first HIT fit in the budget and still completes.
        clock.run_until_idle()
        assert len(results) == 1


class TestGenerateTasks:
    def test_question_task_reduces_fieldwise(self):
        clock, _platform, _stats, _budget, manager = build_manager()
        results = []
        task = Task(
            kind=TaskKind.GENERATE,
            spec=FINDCEO_SPEC,
            payload={"args": ("Acme",), "companyName": "Acme"},
            callback=results.append,
            cache_key=("Acme",),
            query_id="q1",
        )
        manager.submit(task)
        manager.flush()
        clock.run_until_idle()
        assert results[0].reduced == {"CEO": "CEO of Acme"}
