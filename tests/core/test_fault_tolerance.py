"""Regression tests for the fault-tolerant HIT lifecycle (engine level).

Before the requeue path existed, an expired HIT silently stranded its tasks:
the operators kept their outstanding-task counts forever and the owning
query waited forever.  These tests pin the fixed behaviour — expiry requeues
and completes, attempt exhaustion surfaces ``STALLED`` — and the salvage of
partially submitted HITs.
"""

import pytest

from repro.core.exec.handle import QueryStatus
from repro.crowd import FaultProfile
from repro.errors import QueryStalledError
from repro.experiments.harness import build_products_engine

PRODUCTS_SQL = "SELECT name FROM products WHERE isTargetColor(name)"


class TestExpiredHITRequeue:
    def test_manually_expired_hit_no_longer_strands_the_query(self):
        """The original bug: expire_hit left the owning query waiting forever."""
        run = build_products_engine(n_products=6, assignments=3, seed=91)
        engine = run.engine
        handle = engine.query(PRODUCTS_SQL)
        # Step until the first HITs are posted, then yank one out from under
        # the engine before any of its assignments complete.
        while not engine.platform.list_hits():
            assert handle.step()
        victim = engine.platform.list_hits()[0]
        engine.platform.expire_hit(victim.hit_id)
        rows = handle.wait()  # used to hang (scheduler stuck) without requeue
        assert handle.status is QueryStatus.COMPLETED
        assert len(rows) == len({row["name"] for row in rows})
        assert engine.task_manager.stats.tasks_requeued >= 1
        # The replacement HIT was actually posted and paid for.
        assert engine.platform.stats.hits_created > 6

    def test_deadline_expiry_requeues_and_completes(self):
        faults = FaultProfile(seed=21, hit_lifetime=900.0, pickup_slowdown=3.0)
        run = build_products_engine(
            n_products=8, assignments=3, filter_batch=4, seed=92, fault_profile=faults
        )
        handle = run.engine.query(PRODUCTS_SQL)
        handle.wait()
        assert handle.status is QueryStatus.COMPLETED
        assert run.engine.platform.stats.hits_expired >= 1
        assert run.engine.task_manager.stats.tasks_requeued >= 1
        # Each product judged exactly once: no lost or duplicated rows.
        names = [row["name"] for row in handle.results()]
        assert len(names) == len(set(names))

    def test_partial_submissions_of_expired_hits_are_salvaged(self):
        """Answers an expired HIT did collect are merged, not thrown away."""
        faults = FaultProfile(seed=22, hit_lifetime=1200.0, pickup_slowdown=2.5)
        run = build_products_engine(
            n_products=10, assignments=3, filter_batch=5, seed=93, fault_profile=faults
        )
        handle = run.engine.query(PRODUCTS_SQL)
        handle.wait()
        assert handle.status is QueryStatus.COMPLETED
        stats = run.engine.platform.stats
        if stats.assignments_submitted:
            # Paid-for partial submissions stay counted and attributed.
            assert handle.total_cost > 0


class TestBudgetRefunds:
    def test_expired_hits_release_their_unspent_commitment(self):
        """An expiry storm must not eat the budget of work never paid for."""
        faults = FaultProfile(seed=24, hit_lifetime=900.0, pickup_slowdown=3.0)
        run = build_products_engine(
            n_products=8, assignments=3, filter_batch=4, seed=95, fault_profile=faults
        )
        engine = run.engine
        # Budget with modest headroom over the nominal cost: 8 tasks x 3
        # assignments x $0.015 = $0.36 nominal.  Without refunds, each
        # zero-submission expiry would permanently consume a full share and
        # the re-posts would blow through this limit.
        handle = engine.query(PRODUCTS_SQL, budget=0.60)
        handle.wait()
        assert handle.status is QueryStatus.COMPLETED
        assert engine.platform.stats.hits_expired >= 1
        assert engine.task_manager.stats.hit_dollars_refunded > 0
        # Committed never below actual spend, and within the limit.
        budget = engine.budget_ledger.budget(handle.query_id)
        assert budget.committed >= handle.total_cost - 1e-9
        assert budget.committed <= 0.60 + 1e-9


class TestNoWorkForDeadQueries:
    def test_expiry_after_stall_does_not_repost_for_the_dead_query(self):
        """An in-flight HIT expiring after its query ended must not re-bill it."""
        faults = FaultProfile(seed=23, hit_lifetime=60.0, pickup_slowdown=50.0)
        run = build_products_engine(n_products=4, assignments=3, seed=96, fault_profile=faults)
        engine = run.engine
        handle = engine.query(PRODUCTS_SQL)
        with pytest.raises(QueryStalledError):
            handle.wait()
        hits_at_stall = engine.platform.stats.hits_created
        # Let any straggler expiries fire with nobody driving the query.
        engine.clock.run_until_idle()
        assert engine.platform.stats.hits_created == hits_at_stall
        assert engine.task_manager.pending_tasks() == 0


class TestDegradedDelivery:
    def test_salvaged_answers_are_delivered_when_attempts_run_out(self):
        """Paid-for partial answers become a below-target result, not a stall."""
        from repro.crowd import QualityConfig

        # Pickup slow enough that HITs usually expire with partial
        # submissions; attempt cap of 1 so the second expiry must settle.
        faults = FaultProfile(seed=26, hit_lifetime=1500.0, pickup_slowdown=5.0)
        run = build_products_engine(
            n_products=10,
            assignments=3,
            filter_batch=5,
            seed=97,
            fault_profile=faults,
            quality=QualityConfig(
                gold_frequency=0.0,
                weighted_voting=False,
                adaptive_redundancy=False,
                max_attempts=1,
            ),
        )
        handle = run.engine.query(PRODUCTS_SQL)
        try:
            handle.wait()
        except QueryStalledError:
            pass
        stats = run.engine.task_manager.stats
        assert run.engine.platform.stats.hits_expired >= 1
        # Tasks that burned the attempt cap while holding answers delivered
        # degraded results instead of being discarded.
        assert stats.tasks_degraded >= 1
        assert handle.status is QueryStatus.COMPLETED


class TestAttemptExhaustion:
    def _stalled_run(self):
        # Nobody ever picks work up: every HIT expires untouched until the
        # attempt cap burns out.
        faults = FaultProfile(seed=23, hit_lifetime=60.0, pickup_slowdown=50.0)
        return build_products_engine(n_products=4, assignments=3, seed=94, fault_profile=faults)

    def test_attempt_capped_tasks_surface_stalled_instead_of_hanging(self):
        run = self._stalled_run()
        handle = run.engine.query(PRODUCTS_SQL)
        with pytest.raises(QueryStalledError):
            handle.wait()
        assert handle.status is QueryStatus.STALLED
        assert isinstance(handle.error, QueryStalledError)
        assert run.engine.task_manager.stats.tasks_exhausted >= 1
        # 1 initial post + max_attempts re-posts per task, then surrender.
        per_task_cap = 1 + run.engine.task_manager.max_attempts
        assert run.engine.platform.stats.hits_created <= 4 * per_task_cap

    def test_stall_is_reported_on_the_scheduler_events(self):
        run = self._stalled_run()
        handle = run.engine.query(PRODUCTS_SQL)
        with pytest.raises(QueryStalledError):
            handle.wait()
        events = [e.event for e in run.engine.scheduler.events_for(handle.query_id)]
        assert "stalled" in events

    def test_concurrent_healthy_query_is_not_dragged_down(self):
        """A targeted stall must not mark the neighbour query stalled."""
        run = self._stalled_run()
        engine = run.engine
        # A purely local (crowd-free) query sharing the scheduler.
        healthy = engine.query("SELECT name FROM products")
        doomed = engine.query(PRODUCTS_SQL)
        assert healthy.wait() is not None
        assert healthy.status is QueryStatus.COMPLETED
        with pytest.raises(QueryStalledError):
            doomed.wait()
        assert doomed.status is QueryStatus.STALLED
        assert healthy.status is QueryStatus.COMPLETED
