"""Unit tests for TASK specifications."""

import pytest

from repro.core.tasks.spec import (
    ComparisonResponse,
    FormResponse,
    JoinColumnsResponse,
    Parameter,
    RatingResponse,
    ReturnField,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.errors import TaskError


def question_spec(**overrides):
    defaults = dict(
        name="findCEO",
        task_type=TaskType.QUESTION,
        text="Find the CEO for %s",
        response=FormResponse((("CEO", "String"),)),
        parameters=(Parameter("companyName"),),
        returns=(ReturnField("CEO"),),
    )
    defaults.update(overrides)
    return TaskSpec(**defaults)


class TestTaskType:
    def test_from_string_case_insensitive(self):
        assert TaskType.from_string("joinpredicate") is TaskType.JOIN_PREDICATE

    def test_from_string_unknown(self):
        with pytest.raises(TaskError):
            TaskType.from_string("Mystery")


class TestResponses:
    def test_form_requires_fields(self):
        with pytest.raises(TaskError):
            FormResponse(())

    def test_join_columns_sizes_validated(self):
        with pytest.raises(TaskError):
            JoinColumnsResponse("L", "R", left_per_hit=0)

    def test_rating_scale_must_increase(self):
        with pytest.raises(TaskError):
            RatingResponse((5, 5))


class TestTaskSpecValidation:
    def test_defaults_and_default_combiner(self):
        spec = question_spec()
        assert spec.combiner == "FieldwiseMajority"
        assert spec.price == 0.01
        filter_spec = TaskSpec(
            name="f", task_type=TaskType.FILTER, text="?", response=YesNoResponse()
        )
        assert filter_spec.combiner == "MajorityVote"
        assert filter_spec.returns_bool

    def test_response_must_match_task_type(self):
        with pytest.raises(TaskError):
            TaskSpec(name="bad", task_type=TaskType.QUESTION, text="?", response=YesNoResponse())
        with pytest.raises(TaskError):
            TaskSpec(
                name="bad", task_type=TaskType.FILTER, text="?",
                response=FormResponse((("A", "String"),)),
            )

    def test_rank_accepts_comparison_or_rating(self):
        TaskSpec(name="r1", task_type=TaskType.RANK, text="?", response=ComparisonResponse())
        TaskSpec(name="r2", task_type=TaskType.RANK, text="?", response=RatingResponse())

    def test_invalid_tuning_parameters(self):
        with pytest.raises(TaskError):
            question_spec(price=0)
        with pytest.raises(TaskError):
            question_spec(assignments=0)
        with pytest.raises(TaskError):
            question_spec(batch_size=0)
        with pytest.raises(TaskError):
            question_spec(name="")


class TestTaskSpecHelpers:
    def test_render_text_substitution(self):
        spec = question_spec()
        assert spec.render_text("Acme") == "Find the CEO for Acme"

    def test_render_text_arity_mismatch(self):
        with pytest.raises(TaskError):
            question_spec().render_text()
        with pytest.raises(TaskError):
            question_spec(text="no placeholders").render_text("extra")

    def test_return_field_names(self):
        assert question_spec().return_field_names == ("CEO",)

    def test_with_overrides_changes_only_requested_fields(self):
        spec = question_spec()
        tuned = spec.with_overrides(assignments=5, price=0.05)
        assert tuned.assignments == 5
        assert tuned.price == 0.05
        assert tuned.text == spec.text
        assert spec.assignments == 3  # original untouched
