"""Tests for the control plane's incremental indexes.

The scheduler, Task Manager and marketplace simulator replaced their
whole-world scans with counters and per-key indexes; these tests pin the
index bookkeeping: every count must agree with a from-scratch recomputation
at each lifecycle edge (submit, flush, settle, expire, cancel).
"""

from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.batching import FixedBatching
from repro.core.tasks.spec import Parameter, TaskSpec, TaskType, YesNoResponse
from repro.core.tasks.task import Task, TaskKind
from repro.core.tasks.task_manager import TaskManager
from repro.crowd import (
    CallbackOracle,
    HITStatus,
    MTurkSimulator,
    PopulationMix,
    SimulationClock,
    WorkerPool,
)

FILTER_SPEC = TaskSpec(
    name="isRed",
    task_type=TaskType.FILTER,
    text="Is %s red?",
    response=YesNoResponse(),
    parameters=(Parameter("name"),),
    price=0.01,
    assignments=3,
)

ORACLE = CallbackOracle(predicate=lambda item: item.payload.get("is_red", False))


def build_manager():
    clock = SimulationClock()
    pool = WorkerPool(size=50, seed=1, mix=PopulationMix(diligent=1, noisy=0, lazy=0, spammer=0))
    platform = MTurkSimulator(clock, pool, ORACLE)
    manager = TaskManager(platform, StatisticsManager(), BudgetLedger())
    return clock, platform, manager


def filter_task(sink, *, name, query_id):
    return Task(
        kind=TaskKind.FILTER,
        spec=FILTER_SPEC,
        payload={"args": (name,), "name": name, "is_red": True},
        callback=sink.append,
        query_id=query_id,
    )


class TestPendingCounters:
    def test_per_query_pending_counts_track_submit_flush_and_cancel(self):
        clock, _platform, manager = build_manager()
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(4))
        results = []
        for index in range(3):
            manager.submit(filter_task(results, name=f"a{index}", query_id="q1"))
        manager.submit(filter_task(results, name="b0", query_id="q2"))
        assert manager.pending_tasks() == 4
        assert manager.pending_tasks("q1") == 3
        assert manager.pending_tasks("q2") == 1
        assert manager.pending_tasks("q-unknown") == 0
        # The full batch flushes; every counter returns to zero.
        assert manager.flush() == 1
        assert manager.pending_tasks() == 0
        assert manager.pending_tasks("q1") == 0
        clock.run_until_idle()
        assert len(results) == 4

    def test_cancel_query_clears_only_its_own_tasks(self):
        _clock, _platform, manager = build_manager()
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(10))
        results = []
        for index in range(3):
            manager.submit(filter_task(results, name=f"a{index}", query_id="q1"))
        for index in range(2):
            manager.submit(filter_task(results, name=f"b{index}", query_id="q2"))
        assert manager.cancel_query("q1") == 3
        assert manager.pending_tasks() == 2
        assert manager.pending_tasks("q1") == 0
        assert manager.pending_tasks("q2") == 2
        # Cancelling again is a cheap no-op (the per-query count is zero).
        assert manager.cancel_query("q1") == 0

    def test_has_outstanding_work_is_counter_backed(self):
        clock, _platform, manager = build_manager()
        results = []
        assert not manager.has_outstanding_work()
        manager.submit(filter_task(results, name="a", query_id="q1"))
        assert manager.has_outstanding_work()
        manager.flush(force=True)
        assert manager.has_outstanding_work()  # in flight now
        clock.run_until_idle()
        assert not manager.has_outstanding_work()


class TestInflightIndexes:
    def test_inflight_hits_indexed_by_query_and_group(self):
        clock, _platform, manager = build_manager()
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(2))
        results = []
        manager.submit(filter_task(results, name="a", query_id="q1"))
        manager.submit(filter_task(results, name="b", query_id="q2"))
        manager.submit(filter_task(results, name="c", query_id="q1"))
        assert manager.flush(force=True) == 2
        assert manager.inflight_hits() == 2
        assert manager.inflight_hits("q1") == 2  # the shared HIT and the solo one
        assert manager.inflight_hits("q2") == 1
        assert manager.inflight_hits("q-unknown") == 0
        group_hits = manager.inflight_hits_for_group("isRed", TaskKind.FILTER)
        assert len(group_hits) == 2
        assert manager.inflight_hits_for_group("isBlue", TaskKind.FILTER) == []
        clock.run_until_idle()
        assert manager.inflight_hits() == 0
        assert manager.inflight_hits("q1") == 0
        assert manager.inflight_hits_for_group("isRed", TaskKind.FILTER) == []
        assert len(results) == 3


class TestPlatformIndexes:
    def test_status_index_and_expiry_heap(self):
        clock, platform, manager = build_manager()
        results = []
        manager.submit(filter_task(results, name="a", query_id="q1"))
        manager.flush(force=True)
        (hit,) = platform.open_hits()
        assert platform.open_hit_count() == 1
        assert platform.next_expiry_at() == hit.expires_at
        clock.run_until_idle()
        # Completed HITs leave the hot (open) index but stay in the archive.
        assert platform.open_hit_count() == 0
        assert platform.next_expiry_at() is None
        assert platform.list_hits(HITStatus.COMPLETED) == [hit]
        assert platform.list_hits() == [hit]
        assert platform.get_hit(hit.hit_id) is hit

    def test_expired_hits_move_to_the_expired_index(self):
        _clock, platform, manager = build_manager()
        results = []
        manager.submit(filter_task(results, name="a", query_id="q1"))
        manager.flush(force=True)
        (hit,) = platform.open_hits()
        platform.expire_hit(hit.hit_id)
        assert platform.open_hit_count() == 0
        assert platform.next_expiry_at() is None
        assert platform.list_hits(HITStatus.EXPIRED) == [hit]
        platform.dispose_hit(hit.hit_id)
        assert platform.list_hits(HITStatus.EXPIRED) == []
        assert platform.list_hits(HITStatus.DISPOSED) == [hit]

    def test_outstanding_assignment_counter_matches_scan(self):
        from repro.crowd.hit import AssignmentStatus

        clock, platform, manager = build_manager()
        results = []
        for index in range(3):
            manager.submit(filter_task(results, name=f"a{index}", query_id="q1"))
        manager.flush(force=True)

        def scan():
            return sum(
                1
                for hit in platform.list_hits()
                for assignment in hit.assignments
                if assignment.status is AssignmentStatus.ACCEPTED
            )

        assert platform.outstanding_assignments() == scan() > 0
        while clock.run_next():
            assert platform.outstanding_assignments() == scan()
        assert platform.outstanding_assignments() == 0
