"""Answer-tier policies and Task Manager bookkeeping regressions.

Covers the cache's TTL expiry against both clock substrates (simulated and
wall), reputation-weighted admission, the model-answers-are-cached path, the
corrected savings attribution, and the ``_submitted_at`` leak regression —
the dict must be empty once a workload has fully drained, whatever terminal
path each task took.
"""

import pytest

from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.spec import Parameter, TaskSpec, TaskType, YesNoResponse
from repro.core.tasks.task import ResultSource, Task, TaskKind
from repro.core.tasks.task_cache import CacheEntry, CachePolicy, TaskCache
from repro.core.tasks.task_manager import TaskManager
from repro.core.tasks.task_model import TaskModelRegistry
from repro.crowd import (
    CallbackOracle,
    MTurkSimulator,
    PopulationMix,
    SimulationClock,
    WorkerPool,
)
from repro.crowd.quality import WorkerReputation
from repro.crowd.wallclock import WallClock
from repro.errors import BudgetExceededError

FILTER_SPEC = TaskSpec(
    name="isRed",
    task_type=TaskType.FILTER,
    text="Is %s red?",
    response=YesNoResponse(),
    parameters=(Parameter("name"),),
    price=0.01,
    assignments=3,
    feature_extractor=lambda payload: payload.get("features"),
)

ORACLE = CallbackOracle(predicate=lambda item: item.payload.get("is_red", False))


def build_manager(*, cache=None, models=None, reputation=None, seed=1, pool_size=50):
    clock = SimulationClock()
    pool = WorkerPool(
        size=pool_size, seed=seed, mix=PopulationMix(diligent=1, noisy=0, lazy=0, spammer=0)
    )
    platform = MTurkSimulator(clock, pool, ORACLE)
    manager = TaskManager(
        platform,
        StatisticsManager(),
        BudgetLedger(),
        cache=cache,
        models=models,
        reputation=reputation,
    )
    return clock, platform, manager


def filter_task(results, name="mug", is_red=True, query_id="q1", cache_key=None, features=None):
    payload = {"args": (name,), "name": name, "is_red": is_red}
    if features is not None:
        payload["features"] = features
    return Task(
        kind=TaskKind.FILTER,
        spec=FILTER_SPEC,
        payload=payload,
        callback=results.append,
        cache_key=cache_key,
        query_id=query_id,
    )


class TestCachePolicyValidation:
    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            CachePolicy(ttl=-1.0)

    def test_rejects_out_of_range_confidence(self):
        with pytest.raises(ValueError):
            CachePolicy(min_confidence=1.5)


class TestTTLExpiry:
    def test_entries_expire_against_the_simulation_clock(self):
        cache = TaskCache(policy=CachePolicy(ttl=100.0))
        clock, platform, manager = build_manager(cache=cache)
        results = []
        manager.submit(filter_task(results, cache_key=("mug",)))
        manager.flush()
        clock.run_until_idle()
        assert platform.stats.hits_created == 1

        # Within the TTL the answer is reused...
        manager.submit(filter_task(results, cache_key=("mug",), query_id="q2"))
        assert results[-1].source is ResultSource.CACHE

        # ...but once the (simulated) clock outruns it, the crowd pays again.
        clock.advance_by(500.0)
        manager.submit(filter_task(results, cache_key=("mug",), query_id="q3"))
        manager.flush()
        clock.run_until_idle()
        assert results[-1].source is ResultSource.CROWD
        assert platform.stats.hits_created == 2
        assert cache.stats.expirations == 1

    def test_entries_expire_against_a_wall_clock(self):
        # A deterministic wall clock: each now() reading pops the next time.
        times = iter([0.0, 0.0, 10.0, 200.0])
        clock = WallClock(time_source=lambda: next(times), sleep=lambda s: None)
        cache = TaskCache(policy=CachePolicy(ttl=100.0))
        cache.store("findCEO", ("Acme",), {"CEO": "Jane"}, cost=0.075, now=clock.now)
        assert cache.lookup("findCEO", ("Acme",), now=clock.now) is not None
        assert cache.lookup("findCEO", ("Acme",), now=clock.now) is None
        assert cache.stats.expirations == 1

    def test_no_ttl_never_expires(self):
        cache = TaskCache()
        cache.store("f", ("x",), True, cost=0.1, now=0.0)
        assert cache.lookup("f", ("x",), now=1e12) is not None
        assert cache.stats.expirations == 0

    def test_legacy_lookup_without_now_skips_ttl(self):
        cache = TaskCache(policy=CachePolicy(ttl=1.0))
        cache.store("f", ("x",), True, cost=0.1, now=0.0)
        assert cache.lookup("f", ("x",)) is not None


class TestReputationWeightedAdmission:
    def test_low_confidence_store_is_rejected(self):
        cache = TaskCache(policy=CachePolicy(min_confidence=0.9))
        assert not cache.store("f", ("x",), True, cost=0.1, now=0.0, confidence=0.5)
        assert cache.stats.admissions_rejected == 1
        assert cache.lookup("f", ("x",)) is None

    def test_untrusted_workers_cannot_seed_the_cache(self):
        # The reputation prior mean is 0.8; with the admission bar at 0.9
        # an answer produced by unproven workers is not cached, so the
        # second identical task pays the crowd again.
        cache = TaskCache(policy=CachePolicy(min_confidence=0.9))
        clock, platform, manager = build_manager(
            cache=cache, reputation=WorkerReputation()
        )
        results = []
        manager.submit(filter_task(results, cache_key=("mug",)))
        manager.flush()
        clock.run_until_idle()
        assert cache.stats.admissions_rejected == 1
        manager.submit(filter_task(results, cache_key=("mug",), query_id="q2"))
        manager.flush()
        clock.run_until_idle()
        assert results[-1].source is ResultSource.CROWD
        assert platform.stats.hits_created == 2

    def test_proven_workers_clear_the_bar(self):
        # A three-worker pool with three assignments: the same workers answer
        # every task, so vouching for them lifts later answers over the bar.
        cache = TaskCache(policy=CachePolicy(min_confidence=0.9))
        reputation = WorkerReputation()
        clock, platform, manager = build_manager(
            cache=cache, reputation=reputation, pool_size=3
        )
        results = []
        manager.submit(filter_task(results, cache_key=("mug",)))
        manager.flush()
        clock.run_until_idle()
        # Vouch for the exact workers who answered, then retry.
        for worker_id in results[0].answers.worker_ids:
            for _ in range(50):
                reputation.record_gold(worker_id, True)
        manager.submit(filter_task(results, name="cup", cache_key=("cup",), query_id="q2"))
        manager.flush()
        clock.run_until_idle()
        assert cache.stats.admissions_rejected == 1  # only the first store
        manager.submit(filter_task(results, name="cup", cache_key=("cup",), query_id="q3"))
        assert results[-1].source is ResultSource.CACHE


class TestSavingsAttribution:
    def test_cache_hit_credits_what_the_requester_avoided(self):
        cache = TaskCache()
        clock, platform, manager = build_manager(cache=cache)
        results = []
        manager.submit(filter_task(results, cache_key=("mug",)))
        manager.flush()
        clock.run_until_idle()
        assert cache.stats.dollars_saved == 0.0
        manager.submit(filter_task(results, cache_key=("mug",), query_id="q2"))
        # assignment_cost(0.01) = 0.01 + max(0.001, 0.005) = 0.015, x3.
        assert cache.stats.dollars_saved == pytest.approx(0.045)
        assert results[-1].avoided_cost == pytest.approx(0.045)
        assert manager.statistics.query("q2").dollars_saved_cache == pytest.approx(0.045)


class TestModelAnswersAreCached:
    def _trained_manager(self):
        models = TaskModelRegistry()
        model = models.register_default(
            FILTER_SPEC,
            min_observations=10,
            trust_accuracy=0.8,
            confidence_threshold=0.3,
            learning_rate=0.5,
        )
        cache = TaskCache()
        clock, platform, manager = build_manager(cache=cache, models=models)
        results = []
        for index in range(40):
            is_red = index % 2 == 0
            manager.submit(
                filter_task(
                    results,
                    name=f"item{index}",
                    is_red=is_red,
                    query_id="train",
                    features=[1.0, 0.0] if is_red else [0.0, 1.0],
                )
            )
        manager.flush()
        clock.run_until_idle()
        assert model.is_trusted
        return clock, platform, manager, cache, results

    def test_model_answer_is_stored_at_zero_cost(self):
        clock, platform, manager, cache, results = self._trained_manager()
        manager.submit(
            filter_task(
                results, name="new", cache_key=("new",), query_id="q9", features=[1.0, 0.0]
            )
        )
        assert results[-1].source is ResultSource.MODEL
        entry = cache.lookup("isRed", ("new",))
        assert entry is not None
        assert entry.original_cost == 0.0
        assert 0.0 < entry.confidence <= 1.0

    def test_second_identical_task_hits_the_cache_not_the_model(self):
        clock, platform, manager, cache, results = self._trained_manager()
        manager.submit(
            filter_task(
                results, name="new", cache_key=("new",), query_id="q9", features=[1.0, 0.0]
            )
        )
        hits_before = platform.stats.hits_created
        manager.submit(
            filter_task(
                results, name="new", cache_key=("new",), query_id="q10", features=[1.0, 0.0]
            )
        )
        assert results[-1].source is ResultSource.CACHE
        assert results[-1].reduced == results[-2].reduced
        assert platform.stats.hits_created == hits_before


class TestSubmittedAtBookkeeping:
    def test_empty_after_crowd_and_cache_paths_drain(self):
        cache = TaskCache()
        clock, _platform, manager = build_manager(cache=cache)
        results = []
        for index in range(4):
            manager.submit(filter_task(results, name=f"n{index}", cache_key=(f"n{index}",)))
        manager.flush()
        clock.run_until_idle()
        # Cache hits resolve synchronously and must not leave stamps behind.
        for index in range(4):
            manager.submit(
                filter_task(results, name=f"n{index}", cache_key=(f"n{index}",), query_id="q2")
            )
        assert len(results) == 8
        assert manager._submitted_at == {}

    def test_empty_after_model_answers(self):
        models = TaskModelRegistry()
        models.register_default(
            FILTER_SPEC,
            min_observations=10,
            trust_accuracy=0.8,
            confidence_threshold=0.3,
            learning_rate=0.5,
        )
        clock, _platform, manager = build_manager(cache=TaskCache(), models=models)
        results = []
        for index in range(40):
            is_red = index % 2 == 0
            manager.submit(
                filter_task(
                    results,
                    name=f"item{index}",
                    is_red=is_red,
                    query_id="train",
                    features=[1.0, 0.0] if is_red else [0.0, 1.0],
                )
            )
        manager.flush()
        clock.run_until_idle()
        manager.submit(
            filter_task(results, name="new", query_id="q9", features=[1.0, 0.0])
        )
        assert results[-1].source is ResultSource.MODEL
        assert manager._submitted_at == {}

    def test_empty_after_cancellation(self):
        clock, _platform, manager = build_manager()
        results = []
        for index in range(3):
            manager.submit(filter_task(results, name=f"n{index}"))
        manager.cancel_query("q1")
        clock.run_until_idle()
        assert manager._submitted_at == {}

    def test_empty_after_over_budget_drop(self):
        clock, _platform, manager = build_manager()
        manager.budget.register("q1", 0.05)  # one HIT costs 3 * 0.015 = 0.045
        results = []
        manager.submit(filter_task(results, name="a"))
        manager.submit(filter_task(results, name="b"))
        with pytest.raises(BudgetExceededError):
            manager.flush()
        clock.run_until_idle()
        assert len(results) == 1
        assert manager._submitted_at == {}


class TestExportImport:
    def test_round_trip_preserves_entries_and_attributes_cross_shard_hits(self):
        source = TaskCache()
        source.store("findCEO", ("Acme",), {"CEO": "Jane"}, cost=0.075, now=5.0)
        source.store("findCEO", ("Bolt",), {"CEO": "Ana"}, cost=0.075, now=6.0)
        cursor, items = source.export_since(0)
        assert cursor == 2 and len(items) == 2

        sink = TaskCache()
        assert sink.import_entries(items) == 2
        assert sink.stats.entries_imported == 2
        entry = sink.lookup("findCEO", ("Acme",))
        assert entry is not None and entry.reduced == {"CEO": "Jane"}
        assert sink.stats.cross_shard_hits == 1
        # Imports are not re-exported: the sink only ships its own answers.
        assert sink.export_since(0) == (0, [])

    def test_local_entries_win_over_imports(self):
        source = TaskCache()
        source.store("f", ("x",), "theirs", cost=0.1, now=1.0)
        _, items = source.export_since(0)
        sink = TaskCache()
        sink.store("f", ("x",), "mine", cost=0.1, now=2.0)
        assert sink.import_entries(items) == 0
        assert sink.lookup("f", ("x",)).reduced == "mine"
        assert sink.stats.cross_shard_hits == 0

    def test_incremental_export_cursor(self):
        cache = TaskCache()
        cache.store("f", ("x",), 1, cost=0.1, now=0.0)
        cursor, items = cache.export_since(0)
        assert len(items) == 1
        cache.store("f", ("y",), 2, cost=0.1, now=1.0)
        cursor, items = cache.export_since(cursor)
        assert [item["name"] for item in items] == ["f"]
        assert len(items) == 1

    def test_preload_respects_live_entries(self):
        cache = TaskCache()
        cache.store("f", ("x",), "live", cost=0.1, now=5.0)
        stale = CacheEntry(reduced="stale", original_cost=0.1, stored_at=0.0)
        assert not cache.preload("f", ("x",), stale)
        assert cache.preload("f", ("y",), stale)
        assert cache.lookup("f", ("x",)).reduced == "live"
