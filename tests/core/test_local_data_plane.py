"""The batched local data plane: hash join, drain bounds, clock compaction.

These tests pin down the driver-level contract of the vectorized refactor:
local-only plans take big steps (and still produce exactly the same rows),
crowd plans keep the small interleaving bound, and the simulation clock
tracks pending events in O(1) with lazy heap compaction.
"""

import pytest

from repro.core.exec.context import ExecutionContext, QueryConfig
from repro.core.exec.executor import QueryExecutor
from repro.core.operators.aggregate import AggregateSpec, GroupByOperator
from repro.core.operators.base import Operator
from repro.core.operators.join_local import LocalHashJoinOperator
from repro.core.operators.project import LocalFilterOperator
from repro.core.operators.scan import ScanOperator
from repro.core.operators.sink import ResultSinkOperator
from repro.core.operators.sort_local import LocalSortOperator
from repro.crowd.clock import SimulationClock
from repro.engine import QurkEngine
from repro.storage import ColumnRef, Comparison, DataType, Literal


def build_engine(n_rows=500, n_groups=10):
    engine = QurkEngine(seed=11, worker_pool_size=5)
    items = engine.create_table(
        "items",
        [("id", DataType.INTEGER), ("grp", DataType.STRING), ("score", DataType.FLOAT)],
    )
    groups = engine.create_table("groups", [("name", DataType.STRING), ("w", DataType.FLOAT)])
    items.insert_many(
        (i, f"g{i % n_groups}", (i % 97) / 97.0) for i in range(n_rows)
    )
    groups.insert_many((f"g{i}", float(i)) for i in range(n_groups))
    return engine


def build_local_plan(engine, query_id="local-q"):
    scan_items = ScanOperator(engine.database.table("items"))
    filt = LocalFilterOperator(
        Comparison(">", ColumnRef("score"), Literal(0.25)), scan_items.output_schema
    )
    filt.add_child(scan_items)
    scan_groups = ScanOperator(engine.database.table("groups"))
    joined = LocalHashJoinOperator(
        ColumnRef("grp"), ColumnRef("name"), filt.output_schema, scan_groups.output_schema
    )
    joined.add_child(filt)
    joined.add_child(scan_groups)
    sort = LocalSortOperator(ColumnRef("score"), joined.output_schema, ascending=False)
    sort.add_child(joined)
    group = GroupByOperator(
        ["grp"],
        [AggregateSpec("n", "count", None), AggregateSpec("total", "sum", ColumnRef("score"))],
        sort.output_schema,
    )
    group.add_child(sort)
    results = engine.database.create_results_table(group.output_schema, query_id=query_id)
    sink = ResultSinkOperator(results)
    sink.add_child(group)
    engine.budget_ledger.register(query_id, None)
    context = ExecutionContext(
        query_id=query_id,
        database=engine.database,
        task_manager=engine.task_manager,
        statistics=engine.statistics,
        budget=engine.budget_ledger,
        clock=engine.clock,
        config=QueryConfig(),
    )
    return QueryExecutor(sink, context)


def reference_result(engine):
    """The same pipeline computed with plain Python over the base tables."""
    weights = {row["name"]: row["w"] for row in engine.database.table("groups").scan()}
    kept = [row for row in engine.database.table("items").scan() if row["score"] > 0.25]
    groups: dict[str, list[float]] = {}
    order: list[str] = []
    for row in sorted(kept, key=lambda r: r["score"], reverse=True):
        grp = row["grp"]
        if grp not in weights:
            continue
        if grp not in groups:
            groups[grp] = []
            order.append(grp)
        groups[grp].append(row["score"])
    return {grp: (len(vals), pytest.approx(sum(vals))) for grp, vals in groups.items()}


class TestLocalHashJoinPipeline:
    def test_pipeline_matches_reference_computation(self):
        engine = build_engine()
        executor = build_local_plan(engine)
        executor.run()
        expected = reference_result(engine)
        rows = executor.root.results_table.rows()
        assert len(rows) == len(expected)
        for row in rows:
            n, total = expected[row["grp"]]
            assert row["n"] == n
            assert row["total"] == total

    def test_null_join_keys_never_match(self):
        engine = QurkEngine(seed=1, worker_pool_size=5)
        left = engine.create_table("l", [("k", DataType.STRING), ("v", DataType.INTEGER)])
        right = engine.create_table("r", [("k", DataType.STRING), ("w", DataType.INTEGER)])
        left.insert_many([("a", 1), (None, 2), ("b", 3)])
        right.insert_many([("a", 10), (None, 20), ("c", 30)])
        scan_l, scan_r = ScanOperator(left), ScanOperator(right)
        join = LocalHashJoinOperator(
            ColumnRef("l.k"), ColumnRef("r.k"), scan_l.output_schema, scan_r.output_schema
        )
        join.add_child(scan_l)
        join.add_child(scan_r)
        results = engine.database.create_results_table(join.output_schema, query_id="j")
        sink = ResultSinkOperator(results)
        sink.add_child(join)
        engine.budget_ledger.register("j", None)
        context = ExecutionContext(
            query_id="j",
            database=engine.database,
            task_manager=engine.task_manager,
            statistics=engine.statistics,
            budget=engine.budget_ledger,
            clock=engine.clock,
            config=QueryConfig(),
        )
        QueryExecutor(sink, context).run()
        assert [(row["l.k"], row["w"]) for row in results.scan()] == [("a", 10)]


class TestDrainBounds:
    def test_local_only_plans_get_the_big_bound(self):
        engine = build_engine(n_rows=50)
        executor = build_local_plan(engine, query_id="bounds")
        for operator in executor.operators():
            assert operator._max_rows_per_step == Operator.LOCAL_MAX_ROWS_PER_STEP

    def test_crowd_plans_keep_the_small_bound(self):
        engine = QurkEngine(seed=5, worker_pool_size=5)
        engine.create_table("t", [("name", DataType.STRING)], rows=[["x"], ["y"]])
        engine.define_task(
            "TASK isRed(String name) RETURNS BOOL:\n"
            "    TaskType: Filter\n"
            "    Text: \"Is %s red?\", name\n"
        )
        from repro.crowd.oracle import CallbackOracle

        engine.register_oracle("isRed", CallbackOracle(predicate=lambda item: True))
        handle = engine.query("SELECT name FROM t WHERE isRed(name)")
        for operator in handle.executor.operators():
            assert operator._max_rows_per_step == Operator.MAX_ROWS_PER_STEP
        handle.wait()
        assert len(handle.results()) == 2

    def test_local_query_needs_few_scheduler_passes(self):
        n_rows = Operator.LOCAL_MAX_ROWS_PER_STEP * 2
        engine = QurkEngine(seed=2)
        engine.create_table("big", ["n"], rows=[[i] for i in range(n_rows)])
        handle = engine.query("SELECT n FROM big")
        handle.wait()
        assert len(handle.results()) == n_rows
        # The whole 2-bound scan finishes in a handful of passes, not
        # thousands of 64-row steps.
        assert engine.scheduler.metrics.passes < 20


class TestClockCompaction:
    def test_pending_events_is_tracked_exactly(self):
        clock = SimulationClock()
        events = [clock.schedule_in(i + 1.0, lambda: None) for i in range(10)]
        assert clock.pending_events == 10
        for event in events[:4]:
            event.cancel()
        assert clock.pending_events == 6
        events[0].cancel()  # double-cancel is a no-op
        assert clock.pending_events == 6
        clock.advance_to(20.0)
        assert clock.pending_events == 0
        assert clock.events_fired == 6

    def test_mass_cancellation_compacts_the_heap(self):
        clock = SimulationClock()
        events = [clock.schedule_in(i + 1.0, lambda: None) for i in range(100)]
        for event in events[:80]:
            event.cancel()
        # Compaction kicked in along the way: the heap holds far fewer than
        # the 80 dead entries it would otherwise accumulate, and the exact
        # live count is still tracked.
        assert len(clock._events) < 50
        assert len(clock._events) - clock._cancelled_in_heap == 20
        assert clock.pending_events == 20
        assert clock.next_event_time() == events[80].time
        clock.run_until_idle()
        assert clock.events_fired == 20

    def test_cancel_after_fire_does_not_corrupt_the_count(self):
        clock = SimulationClock()
        event = clock.schedule_in(1.0, lambda: None)
        keeper = clock.schedule_in(5.0, lambda: None)
        clock.advance_to(2.0)
        event.cancel()  # already fired: must not count as cancelled-in-heap
        assert clock.pending_events == 1
        assert clock.next_event_time() == keeper.time
