"""Tests for the engine-level multi-query scheduler.

Covers the tentpole behaviours: cross-query HIT batching with per-query
budget attribution, admission control with a pending queue, priority-weighted
stepping, lifecycle events on the dashboard, and stall surfacing.
"""

import pytest

from repro import QueryStatus, QurkEngine
from repro.core.exec.handle import QueryHandle
from repro.core.operators.base import Operator
from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.batching import FixedBatching
from repro.core.tasks.spec import Parameter, TaskSpec, TaskType, YesNoResponse
from repro.core.tasks.task import Task, TaskKind
from repro.core.tasks.task_manager import TaskManager
from repro.crowd import CallbackOracle, MTurkSimulator, PopulationMix, SimulationClock, WorkerPool
from repro.dashboard import QueryDashboard
from repro.errors import ExecutionError, QueryStalledError
from repro.experiments import build_products_engine
from repro.storage import DataType, Schema, Table

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"

FILTER_SPEC = TaskSpec(
    name="isRed",
    task_type=TaskType.FILTER,
    text="Is %s red?",
    response=YesNoResponse(),
    parameters=(Parameter("name"),),
    price=0.01,
    assignments=3,
)

ORACLE = CallbackOracle(predicate=lambda item: item.payload.get("is_red", False))


def build_manager(*, budget_limits=None):
    clock = SimulationClock()
    pool = WorkerPool(size=50, seed=1, mix=PopulationMix(diligent=1, noisy=0, lazy=0, spammer=0))
    platform = MTurkSimulator(clock, pool, ORACLE)
    statistics = StatisticsManager()
    budget = BudgetLedger()
    for query_id, limit in (budget_limits or {}).items():
        budget.register(query_id, limit)
    manager = TaskManager(platform, statistics, budget)
    return clock, platform, statistics, budget, manager


def filter_task(sink, *, name, query_id):
    return Task(
        kind=TaskKind.FILTER,
        spec=FILTER_SPEC,
        payload={"args": (name,), "name": name, "is_red": True},
        callback=sink.append,
        query_id=query_id,
    )


class TestCrossQueryBatching:
    def test_one_hit_carries_tasks_from_two_queries(self):
        """The acceptance-criterion unit test: a shared HIT, per-query spend."""
        clock, platform, statistics, budget, manager = build_manager()
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(4))
        results = []
        for index in range(2):
            manager.submit(filter_task(results, name=f"a{index}", query_id="q1"))
        for index in range(2):
            manager.submit(filter_task(results, name=f"b{index}", query_id="q2"))
        assert manager.flush() == 1
        assert platform.stats.hits_created == 1
        assert manager.stats.cross_query_hits == 1
        (inflight,) = manager._inflight.values()
        assert inflight.compiled.query_ids() == ("q1", "q2")
        # The committed cost is split across the two BudgetLedger entries.
        assert budget.committed("q1") == pytest.approx(inflight.cost_committed / 2)
        assert budget.committed("q2") == pytest.approx(inflight.cost_committed / 2)
        clock.run_until_idle()
        assert len(results) == 4
        # Actual spend is attributed per query through each task's query_id.
        assert statistics.query("q1").spent == pytest.approx(statistics.query("q2").spent)
        assert statistics.query("q1").spent > 0

    def test_shares_are_weighted_by_each_tasks_own_cost(self):
        """A cheap low-redundancy query is not billed at its neighbour's rate."""
        clock, _platform, _statistics, budget, manager = build_manager()
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(2))
        results = []
        heavy = filter_task(results, name="h", query_id="heavy")
        heavy.assignments_override = 6
        light = filter_task(results, name="l", query_id="light")
        light.assignments_override = 3
        manager.submit(heavy)
        manager.submit(light)
        assert manager.flush() == 1
        (inflight,) = manager._inflight.values()
        # The HIT runs at 6 assignments; heavy carries 6/9 of the cost.
        assert budget.committed("heavy") == pytest.approx(inflight.cost_committed * 6 / 9)
        assert budget.committed("light") == pytest.approx(inflight.cost_committed * 3 / 9)
        clock.run_until_idle()

    def test_unaffordable_query_is_dropped_from_shared_batch(self):
        clock, platform, _statistics, budget, manager = build_manager(
            budget_limits={"poor": 0.001}
        )
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(4))
        results = []
        manager.submit(filter_task(results, name="a", query_id="rich"))
        manager.submit(filter_task(results, name="b", query_id="rich"))
        manager.submit(filter_task(results, name="c", query_id="poor"))
        manager.submit(filter_task(results, name="d", query_id="poor"))
        # The mixed batch never raises: the poor query is dropped, the HIT
        # posts for the rich one, and the failure is retrievable per query.
        assert manager.flush() == 1
        errors = manager.take_budget_errors()
        assert set(errors) == {"poor"}
        assert errors["poor"].query_id == "poor"
        assert manager.take_budget_errors() == {}
        assert budget.committed("poor") == 0.0
        assert manager.stats.tasks_dropped_over_budget == 2
        clock.run_until_idle()
        assert {result.task.query_id for result in results} == {"rich"}

    def test_dropping_a_query_recheck_survivors_affordability(self):
        """Absorbing a dropped query's cost slice can bust a survivor too."""
        clock, platform, _statistics, budget, manager = build_manager(
            budget_limits={"tight": 0.04, "broke": 0.001}
        )
        manager.set_batching_policy("isRed", TaskKind.FILTER, FixedBatching(4))
        results = []
        for index in range(3):
            manager.submit(filter_task(results, name=f"t{index}", query_id="tight"))
        manager.submit(filter_task(results, name="b", query_id="broke"))
        # One HIT costs 3 * 0.015 = 0.045: "tight" affords its 3/4 slice only
        # while "broke" shares the HIT; once "broke" is dropped the whole cost
        # falls on "tight", which must then be dropped as well — not raise.
        assert manager.flush(raise_on_budget=False) == 0
        assert set(manager.take_budget_errors()) == {"tight", "broke"}
        assert budget.committed("tight") == 0.0
        assert platform.stats.hits_created == 0

    def test_engine_level_sharing_between_concurrent_queries(self):
        run = build_products_engine(n_products=12, filter_batch=10, seed=42)
        first = run.engine.query(FILTER_SQL)
        second = run.engine.query(FILTER_SQL)
        rows = first.wait()
        assert first.status is QueryStatus.COMPLETED
        stats = run.engine.task_manager.stats
        # Waiting on one handle progressed the other query's crowd work too:
        # all of `second`'s HITs were already posted, so finishing it just
        # drains what is still in flight.
        hits_after_first = stats.hits_posted
        second.wait()
        assert second.status is QueryStatus.COMPLETED
        assert stats.hits_posted == hits_after_first
        assert len(rows) > 0 and len(second.results()) > 0
        assert stats.cross_query_hits >= 1
        # Fewer HITs than two isolated runs (the cross-query batching win):
        # each solo run posts a forced partial HIT for its 2-task remainder,
        # while the shared queue fills those slots with the other query's work.
        solo = build_products_engine(n_products=12, filter_batch=10, seed=42)
        solo.engine.query(FILTER_SQL).wait()
        solo_hits = solo.engine.task_manager.stats.hits_posted
        assert stats.hits_posted < 2 * solo_hits
        # Spend still lands on each query's own ledger entry.
        ledger = run.engine.budget_ledger
        assert ledger.committed(first.query_id) > 0
        assert ledger.committed(second.query_id) > 0
        assert first.stats.spent > 0 and second.stats.spent > 0


class TestBudgetIsolation:
    def test_exhausted_query_dies_without_hurting_its_neighbour(self):
        run = build_products_engine(n_products=18, filter_batch=5, seed=42)
        poor = run.engine.query(FILTER_SQL, budget=0.01)
        rich = run.engine.query(FILTER_SQL)
        rows = rich.wait()
        assert rich.status is QueryStatus.COMPLETED
        assert len(rows) > 0
        assert poor.status is QueryStatus.BUDGET_EXCEEDED
        assert poor.error is not None
        assert poor.stats.spent <= 0.01 + 1e-9
        events = {e.event for e in run.engine.scheduler.events_for(poor.query_id)}
        assert "budget_exceeded" in events

    def test_budget_exhaustion_on_a_forced_flush_is_not_a_stall(self):
        """A query killed by the final forced flush keeps BUDGET_EXCEEDED."""
        run = build_products_engine(n_products=2, filter_batch=4, seed=11)
        handle = run.engine.query(FILTER_SQL, budget=0.01)
        rows = handle.wait()  # must not raise QueryStalledError
        assert handle.status is QueryStatus.BUDGET_EXCEEDED
        assert rows == []
        events = [e.event for e in run.engine.scheduler.events_for(handle.query_id)]
        assert "stalled" not in events


class TestAdmissionControl:
    def test_queries_beyond_the_limit_wait_for_a_slot(self):
        run = build_products_engine(n_products=10, filter_batch=5, seed=21)
        run.engine.scheduler.max_concurrent_queries = 2
        handles = [run.engine.query(FILTER_SQL) for _ in range(3)]
        scheduler = run.engine.scheduler
        assert scheduler.active_queries() == [handles[0].query_id, handles[1].query_id]
        assert scheduler.queued_queries() == [handles[2].query_id]
        assert scheduler.state_of(handles[2].query_id) == "queued"
        # The queued query is not started until a slot frees up.
        assert handles[2].status is QueryStatus.PENDING
        for handle in handles:
            handle.wait()
        assert all(handle.status is QueryStatus.COMPLETED for handle in handles)
        third_events = [e.event for e in scheduler.events_for(handles[2].query_id)]
        assert third_events.index("admitted") < third_events.index("started")
        assert scheduler.state_of(handles[2].query_id) == "finished"

    def test_constructor_validates_the_limit(self):
        with pytest.raises(ExecutionError):
            QurkEngine(max_concurrent_queries=0)


class TestPriorityWeightedStepping:
    def test_higher_priority_queries_get_more_local_steps(self):
        # Local-only plans drain LOCAL_MAX_ROWS_PER_STEP rows per step, so
        # the table must span several steps for priorities to differentiate.
        n_rows = Operator.LOCAL_MAX_ROWS_PER_STEP * 6
        engine = QurkEngine(seed=3)
        engine.create_table("big", ["n"], rows=[[i] for i in range(n_rows)])
        fast = engine.query("SELECT n FROM big", priority=4.0)
        slow = engine.query("SELECT n FROM big", priority=1.0)
        for _ in range(2):
            engine.scheduler.step()
        assert fast.executor.metrics.passes > slow.executor.metrics.passes
        fast.wait()
        slow.wait()
        assert len(fast.results()) == len(slow.results()) == n_rows

    def test_sub_unit_priorities_are_not_starved(self):
        """A priority < 1 accrues credit over passes; it must never be parked
        while waiting for its first step (parked queries are only woken by
        their own task deliveries, which a never-stepped query has none of)."""
        run = build_products_engine(n_products=4, filter_batch=1, seed=19)
        heavy = run.engine.query(FILTER_SQL, priority=1.0)
        light = run.engine.query(FILTER_SQL, priority=0.25)
        assert heavy.wait() is not None
        assert light.wait() is not None
        assert heavy.status is QueryStatus.COMPLETED
        assert light.status is QueryStatus.COMPLETED
        assert light.stats.tasks_completed > 0

    def test_non_positive_priority_is_rejected(self):
        engine = QurkEngine()
        engine.create_table("t", ["x"], rows=[[1]])
        with pytest.raises(ExecutionError):
            engine.query("SELECT x FROM t", priority=0.0)


class TestFairnessAtScale:
    """The ready-queue must stay fair: skewed priorities starve nobody."""

    N_QUERIES = 256

    def test_256_skewed_queries_all_progress_and_admission_order_holds(self):
        run = build_products_engine(n_products=2, filter_batch=1, seed=77)
        scheduler = run.engine.scheduler
        scheduler.max_concurrent_queries = 16
        # Priorities skewed 1..8, interleaved so heavy and light queries
        # share every admission cohort.
        handles = [
            run.engine.query(FILTER_SQL, priority=1.0 + (i % 8))
            for i in range(self.N_QUERIES)
        ]
        assert len(scheduler.active_queries()) == 16
        assert scheduler.queued_queries() == [h.query_id for h in handles[16:]]
        for handle in handles:
            handle.wait()
        # Starvation-freedom: every query — lowest priority included — ran
        # to completion and did real work.
        assert all(handle.status is QueryStatus.COMPLETED for handle in handles)
        assert all(handle.executor.metrics.passes > 0 for handle in handles)
        assert all(handle.stats.tasks_completed > 0 for handle in handles)
        # Priority weights stepping, never admission: the FIFO waiting order
        # is preserved exactly even though priorities are skewed.
        admitted = [e.query_id for e in scheduler.events if e.event == "admitted"]
        assert admitted == [handle.query_id for handle in handles]

    def test_blocked_queries_are_parked_and_woken_by_deliveries(self):
        run = build_products_engine(n_products=4, filter_batch=1, seed=31)
        scheduler = run.engine.scheduler
        first = run.engine.query(FILTER_SQL)
        second = run.engine.query(FILTER_SQL)
        assert set(scheduler.runnable_queries()) == {first.query_id, second.query_id}
        observed_parked = False
        while not (first.is_terminal and second.is_terminal):
            scheduler.step()
            if len(scheduler.runnable_queries()) < len(scheduler.active_queries()):
                # At least one admitted query is parked awaiting crowd work —
                # the ready queue really is a subset, not a relabeling.
                observed_parked = True
        assert observed_parked
        assert first.status is QueryStatus.COMPLETED
        assert second.status is QueryStatus.COMPLETED
        # The event-driven run loop absorbs marketplace bookkeeping events
        # (partial HIT submissions) without paying a scheduling pass each:
        # strictly fewer passes than clock advances, and the absorbed share
        # is surfaced on the no-op counter.
        assert scheduler.metrics.passes < scheduler.metrics.clock_advances
        assert scheduler.metrics.noop_clock_advances > 0


class TestLifecycleAndDashboard:
    def test_dashboard_surfaces_scheduler_state_and_events(self):
        run = build_products_engine(n_products=10, filter_batch=5, seed=5)
        handle = run.engine.query(FILTER_SQL)
        handle.wait()
        dashboard = QueryDashboard(run.engine)
        snapshot = dashboard.snapshot(handle.query_id)
        assert snapshot.scheduler_state == "finished"
        assert any(event.startswith("submitted@") for event in snapshot.lifecycle)
        assert any(event.startswith("completed@") for event in snapshot.lifecycle)
        text = dashboard.render(handle.query_id)
        assert "scheduler: finished" in text

    def test_shared_clock_is_advanced_by_the_scheduler_only(self):
        run = build_products_engine(n_products=10, filter_batch=5, seed=5)
        handle = run.engine.query(FILTER_SQL)
        handle.wait()
        assert handle.executor.metrics.clock_advances == 0
        assert run.engine.scheduler.metrics.clock_advances > 0


class TestStallSurfacing:
    class _StuckExecutor:
        """An executor whose step never progresses and never completes."""

        def step(self):
            return False

        def step_local(self, **_kwargs):
            return False

        def is_complete(self):
            return False

    def test_legacy_wait_raises_instead_of_returning_partial_results(self):
        table = Table("r", Schema.of(("x", DataType.INTEGER)))
        handle = QueryHandle("q1", "SELECT ...", self._StuckExecutor(), table)
        with pytest.raises(QueryStalledError):
            handle.wait()
        assert handle.status is QueryStatus.STALLED
        assert isinstance(handle.error, QueryStalledError)
        # A stalled handle is terminal: further driving is refused.
        assert handle.step() is False

    def test_scheduler_marks_stuck_queries_stalled_before_raising(self):
        from repro.core.exec.scheduler import EngineScheduler

        clock, _platform, _statistics, _budget, manager = build_manager()
        scheduler = EngineScheduler(clock, manager)
        table = Table("r", Schema.of(("x", DataType.INTEGER)))
        handle = QueryHandle("q1", "SELECT ...", self._StuckExecutor(), table)
        scheduler.submit(handle)
        with pytest.raises(QueryStalledError):
            scheduler.step()
        assert handle.status is QueryStatus.STALLED
        assert isinstance(handle.error, QueryStalledError)
        assert scheduler.state_of("q1") == "finished"
        assert any(event.event == "stalled" for event in scheduler.events_for("q1"))
