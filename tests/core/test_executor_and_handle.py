"""Unit tests for the executor loop, query handles and the experiment helpers."""

import pytest

from repro.core.exec.context import ExecutionContext, QueryConfig
from repro.core.exec.executor import QueryExecutor
from repro.core.exec.handle import QueryHandle, QueryStatus
from repro.core.operators import ProjectOperator, ProjectionItem, ResultSinkOperator, ScanOperator
from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.task_manager import TaskManager
from repro.crowd import CallbackOracle, MTurkSimulator, SimulationClock, WorkerPool
from repro.errors import ExecutionError
from repro.experiments import QUERY1_SQL, build_companies_engine, format_table
from repro.storage import ColumnRef, Database, DataType, Schema, Table


def local_plan():
    database = Database()
    table = Table("t", Schema.of(("x", DataType.INTEGER)))
    table.insert_many([[i] for i in range(5)])
    clock = SimulationClock()
    platform = MTurkSimulator(clock, WorkerPool(size=5, seed=1), CallbackOracle())
    statistics = StatisticsManager()
    budget = BudgetLedger()
    manager = TaskManager(platform, statistics, budget)
    context = ExecutionContext("q1", database, manager, statistics, budget, clock, QueryConfig())
    scan = ScanOperator(table)
    project = ProjectOperator([ProjectionItem("x", ColumnRef("t.x"))])
    project.add_child(scan)
    results = database.create_results_table(project.output_schema, query_id="q1")
    sink = ResultSinkOperator(results)
    sink.add_child(project)
    return sink, results, context


class TestQueryExecutor:
    def test_root_must_be_a_sink(self):
        _sink, _results, context = local_plan()
        with pytest.raises(ExecutionError):
            QueryExecutor(ScanOperator(Table("t", Schema.of("a"))), context)

    def test_local_plan_completes_without_crowd_events(self):
        sink, results, context = local_plan()
        executor = QueryExecutor(sink, context)
        executor.run()
        assert executor.is_complete()
        assert len(results) == 5
        assert executor.metrics.passes > 0
        assert context.statistics.query("q1").results_emitted == 5

    def test_step_after_completion_is_a_noop(self):
        sink, _results, context = local_plan()
        executor = QueryExecutor(sink, context)
        executor.run()
        assert executor.step() is False

    def test_run_with_deadline_stops_early(self):
        run = build_companies_engine(n_companies=5, seed=77)
        handle = run.engine.query(QUERY1_SQL)
        handle.executor.run(until_time=1.0)
        assert not handle.executor.is_complete()
        handle.wait()
        assert handle.is_complete


class TestQueryHandle:
    def test_handle_lifecycle_and_plan_description(self):
        sink, results, context = local_plan()
        executor = QueryExecutor(sink, context)
        handle = QueryHandle("q1", "SELECT x FROM t", executor, results)
        assert handle.status is QueryStatus.PENDING
        rows = handle.wait()
        assert handle.status is QueryStatus.COMPLETED
        assert len(rows) == len(handle) == 5
        plan = handle.describe_plan()
        assert "results-sink" in plan and "scan(t)" in plan
        # A completed handle refuses to step further but keeps returning rows.
        assert handle.step() is False
        assert handle.results()[0]["x"] == 0


class TestExperimentHelpers:
    def test_format_table_alignment_and_values(self):
        text = format_table(
            "demo", ["a", "b"], [{"a": 1, "b": 1234.5678}, {"a": "xy", "b": 0.5}]
        )
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "1,235" in text and "0.500" in text
        assert len(lines) == 5  # title, header, separator, two data rows

    def test_build_companies_engine_is_ready_to_run(self):
        run = build_companies_engine(n_companies=4, seed=5)
        assert run.engine.database.has_table("companies")
        assert "findCEO" in run.engine.registry.names()
        assert run.metadata["n_companies"] == 4
