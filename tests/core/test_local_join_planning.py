"""Machine equi-join planning: build-side choice from catalog statistics.

``FROM a, b WHERE a.id = b.id`` with no crowd join predicate lowers to a
:class:`LogicalLocalJoin`.  The physical planner enumerates both hash-build
sides; a base table carrying a hash index on its join key makes that build
free (the operator reuses the index buckets verbatim), so the index-backed
side wins on estimated machine work.
"""

import pytest

from repro.core.lang.sql_parser import parse_select
from repro.core.operators.join_local import LocalHashJoinOperator
from repro.core.optimizer.cost_model import CostModel
from repro.core.optimizer.optimizer import QueryOptimizer
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.plan.planner import QueryPlanner
from repro.core.plan.registry import TaskRegistry
from repro.engine import QurkEngine
from repro.errors import PlanError
from repro.storage import Database, DataType, Schema, Table

JOIN_SQL = (
    "SELECT orders.order_id, products.name "
    "FROM orders, products WHERE orders.product_id = products.pid"
)


def build_tables(*, index: bool = True) -> tuple[Table, Table]:
    orders = Table(
        "orders", Schema.of(("order_id", DataType.INTEGER), ("product_id", DataType.INTEGER))
    )
    products = Table("products", Schema.of(("pid", DataType.INTEGER), ("name", DataType.STRING)))
    for i in range(12):
        products.insert([i, f"prod{i}"])
    for i in range(40):
        orders.insert([i, i % 12])
    if index:
        products.create_index("pid")
    return orders, products


def build_planner(*tables: Table) -> QueryPlanner:
    database = Database()
    for table in tables:
        database.catalog.register(table)
    optimizer = QueryOptimizer(StatisticsManager(), CostModel())
    return QueryPlanner(database, TaskRegistry(), optimizer)


class TestLocalJoinPlanning:
    def test_both_build_sides_enumerated(self):
        planner = build_planner(*build_tables())
        planned = planner.plan(parse_select(JOIN_SQL), query_id="q1")
        labels = {d for c in planned.candidates for d in c.decisions}
        assert "local-join[orders.product_id = products.pid]: build=left" in labels
        assert (
            "local-join[orders.product_id = products.pid]: build=right (index-backed)"
            in labels
        )

    def test_indexed_side_wins(self):
        """The hash index on products.pid makes the right build free."""
        planner = build_planner(*build_tables())
        planned = planner.plan(parse_select(JOIN_SQL), query_id="q1")
        assert planned.chosen.decisions == (
            "local-join[orders.product_id = products.pid]: build=right (index-backed)",
        )
        joins = [
            op for op in planned.root.walk() if isinstance(op, LocalHashJoinOperator)
        ]
        assert len(joins) == 1
        assert joins[0].build_side == "right"

    def test_no_index_builds_smaller_side(self):
        """Without an index, the fewer-row side (products, 12 rows) is built."""
        planner = build_planner(*build_tables(index=False))
        planned = planner.plan(parse_select(JOIN_SQL), query_id="q1")
        assert planned.chosen.decisions == (
            "local-join[orders.product_id = products.pid]: build=right",
        )

    def test_explain_shows_build_side_candidates(self):
        planner = build_planner(*build_tables())
        text = planner.explain(parse_select(JOIN_SQL))
        assert "local-join(orders.product_id = products.pid)" in text
        assert "build=right (index-backed)" in text
        assert "build=left" in text
        assert "(chosen)" in text

    def test_reversed_predicate_normalizes_to_from_order(self):
        """``b.y = a.x`` plans identically to ``a.x = b.y``."""
        planner = build_planner(*build_tables())
        reversed_sql = (
            "SELECT orders.order_id, products.name "
            "FROM orders, products WHERE products.pid = orders.product_id"
        )
        planned = planner.plan(parse_select(reversed_sql), query_id="q1")
        assert planned.chosen.decisions == (
            "local-join[orders.product_id = products.pid]: build=right (index-backed)",
        )

    def test_disconnected_tables_still_rejected(self):
        orders, products = build_tables()
        extra = Table("extra", Schema.of(("k", DataType.INTEGER)))
        extra.insert([1])
        planner = build_planner(orders, products, extra)
        sql = (
            "SELECT orders.order_id FROM orders, products, extra "
            "WHERE orders.product_id = products.pid"
        )
        with pytest.raises(PlanError, match="unjoined: extra"):
            planner.plan(parse_select(sql), query_id="q1")

    def test_non_equality_cross_predicate_not_promoted(self):
        """``a.x < b.y`` alone stays a cartesian product — still an error."""
        orders, products = build_tables()
        planner = build_planner(orders, products)
        sql = (
            "SELECT orders.order_id FROM orders, products "
            "WHERE orders.product_id < products.pid"
        )
        with pytest.raises(PlanError, match="machine equi-join"):
            planner.plan(parse_select(sql), query_id="q1")


class TestLocalJoinExecution:
    def run_join(self, sql: str, *, index: bool = True) -> list[tuple]:
        engine = QurkEngine()
        for table in build_tables(index=index):
            engine.database.catalog.register(table)
        handle = engine.query(sql)
        engine.scheduler.drain()
        engine.clock.run_until_idle()
        return sorted(tuple(row.values) for row in handle.results())

    def test_join_results(self):
        expected = sorted((i, f"prod{i % 12}") for i in range(40))
        assert self.run_join(JOIN_SQL) == expected

    def test_build_sides_agree(self):
        """Index-backed and dict-build paths produce the same multiset."""
        assert self.run_join(JOIN_SQL) == self.run_join(JOIN_SQL, index=False)

    def test_extra_cross_filter_applies_after_join(self):
        sql = JOIN_SQL + " AND orders.order_id > products.pid"
        rows = self.run_join(sql)
        expected = sorted((i, f"prod{i % 12}") for i in range(40) if i > i % 12)
        assert rows == expected
        assert rows  # the filter keeps the 28 rows where order_id > pid
