"""Unit tests for the logical plan IR: lowering, costing, annotation."""

import pytest

from repro.core.exec.context import QueryConfig
from repro.core.lang.sql_parser import parse_select
from repro.core.optimizer.cost_model import CostModel
from repro.core.optimizer.optimizer import QueryOptimizer
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.plan.logical import (
    LogicalFilter,
    LogicalGenerate,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    from_physical,
    render_tree,
)
from repro.core.plan.planner import QueryPlanner
from repro.core.plan.registry import TaskRegistry
from repro.storage import Database
from repro.workloads import CelebrityWorkload, CompaniesWorkload, ProductsWorkload


@pytest.fixture
def environment():
    database = Database()
    companies = CompaniesWorkload(n_companies=10, seed=1)
    celebrities = CelebrityWorkload(n_celebrities=9, n_spotted=9, seed=2)
    products = ProductsWorkload(n_products=12, seed=3)
    companies.install(database)
    celebrities.install(database)
    products.install(database)
    registry = TaskRegistry()
    registry.register(companies.findceo_spec())
    registry.register(
        celebrities.sameperson_spec(),
        left_payload=celebrities.left_payload,
        right_payload=celebrities.right_payload,
    )
    registry.register(products.color_filter_spec())
    registry.register(products.size_rating_spec(), payload=lambda row: {"name": row["name"]})
    registry.register(products.size_compare_spec(), payload=lambda row: {"name": row["name"]})
    statistics = StatisticsManager()
    optimizer = QueryOptimizer(statistics, CostModel())
    planner = QueryPlanner(database, registry, optimizer, config=QueryConfig())
    return planner, optimizer, statistics


def nodes_of(root, node_type):
    return [node for node in root.walk() if isinstance(node, node_type)]


class TestLowering:
    def test_generate_query_lowering(self, environment):
        planner, _opt, _stats = environment
        plan = planner.lower(
            parse_select("SELECT companyName, findCEO(companyName).CEO FROM companies")
        )
        assert set(plan.table_pipelines) == {"companies"}
        assert not plan.join_predicates and not plan.crowd_filters
        kinds = [type(node) for node in plan.upper]
        assert kinds == [LogicalGenerate, LogicalProject]

    def test_filter_and_sort_lowering(self, environment):
        planner, _opt, _stats = environment
        plan = planner.lower(
            parse_select(
                "SELECT name FROM products WHERE isTargetColor(name) AND price < 50 "
                "ORDER BY biggerItem(name) LIMIT 3"
            )
        )
        # The local predicate is pushed into the table pipeline, below crowd work.
        pipeline = plan.table_pipelines["products"]
        assert isinstance(pipeline, LogicalFilter) and not pipeline.is_crowd
        assert isinstance(pipeline.children[0], LogicalScan)
        crowd = plan.crowd_filters["products"]
        assert len(crowd) == 1 and crowd[0].spec.name == "isTargetColor"
        kinds = [type(node) for node in plan.upper]
        assert kinds == [LogicalSort, LogicalLimit, LogicalProject]
        assert plan.upper[0].is_crowd

    def test_join_lowering(self, environment):
        planner, _opt, _stats = environment
        plan = planner.lower(
            parse_select(
                "SELECT celebrities.name FROM celebrities, spottedstars "
                "WHERE samePerson(celebrities.image, spottedstars.image)"
            )
        )
        assert len(plan.join_predicates) == 1
        join = plan.join_predicates[0]
        assert isinstance(join, LogicalJoin)
        assert (join.left_binding, join.right_binding) == ("celebrities", "spottedstars")

    def test_group_by_lowering(self, environment):
        planner, _opt, _stats = environment
        plan = planner.lower(
            parse_select("SELECT category, count(name) AS n FROM products GROUP BY category")
        )
        groups = [node for node in plan.upper if isinstance(node, LogicalGroupBy)]
        assert len(groups) == 1
        assert groups[0].group_columns == ["category"]


class TestAnnotation:
    def test_filter_applies_selectivity_prior(self, environment):
        planner, optimizer, _stats = environment
        plan = planner.lower(parse_select("SELECT name FROM products WHERE isTargetColor(name)"))
        chosen, _candidates = planner.physical.choose(plan)
        filters = nodes_of(chosen.root, LogicalFilter)
        assert filters[0].estimated_rows == pytest.approx(12 * 0.5)

    def test_negated_filter_uses_complement_selectivity(self, environment):
        planner, optimizer, statistics = environment
        stats = statistics.spec("isTargetColor")
        stats.boolean_total = 36
        stats.boolean_true = 0  # observed selectivity ~0.05 after the prior blend
        plan = planner.lower(
            parse_select("SELECT name FROM products WHERE NOT isTargetColor(name)")
        )
        chosen, _ = planner.physical.choose(plan)
        crowd_filter = next(n for n in nodes_of(chosen.root, LogicalFilter) if n.is_crowd)
        assert crowd_filter.negate
        assert crowd_filter.estimated_rows == pytest.approx(12 * (1 - 2 / 40))

    def test_local_operators_pass_through_cardinality(self, environment):
        """GroupBy, Limit and local Sort annotate with their input cardinality."""
        planner, optimizer, _stats = environment
        plan = planner.lower(
            parse_select(
                "SELECT category, count(name) AS n FROM products "
                "WHERE isTargetColor(name) GROUP BY category LIMIT 2"
            )
        )
        chosen, _ = planner.physical.choose(plan)
        group = nodes_of(chosen.root, LogicalGroupBy)[0]
        limit = nodes_of(chosen.root, LogicalLimit)[0]
        expected = 12 * 0.5
        assert group.estimated_rows == pytest.approx(expected)
        assert limit.estimated_rows == pytest.approx(expected)
        # Local ORDER BY likewise passes through.
        plan = planner.lower(parse_select("SELECT name FROM products ORDER BY price ASC"))
        chosen, _ = planner.physical.choose(plan)
        local_sort = next(n for n in nodes_of(chosen.root, LogicalSort) if not n.is_crowd)
        assert local_sort.estimated_rows == pytest.approx(12)
        assert local_sort.estimated_cost.dollars == 0.0

    def test_render_tree_mentions_rows(self, environment):
        planner, optimizer, _stats = environment
        plan = planner.lower(parse_select("SELECT name FROM products"))
        chosen, _ = planner.physical.choose(plan)
        text = render_tree(chosen.root)
        assert "scan(products)" in text and "rows]" in text


class TestPhysicalBridge:
    def test_from_physical_mirrors_plan_shape(self, environment):
        planner, optimizer, _stats = environment
        planned = planner.plan(
            parse_select("SELECT name FROM products WHERE isTargetColor(name)"),
            query_id="q1",
        )
        logical = from_physical(planned.root)
        labels = [node.label() for node in logical.walk()]
        assert "scan(products)" in labels
        assert any(label.startswith("crowd-filter") for label in labels)

    def test_estimate_plan_cost_matches_logical_costing(self, environment):
        planner, optimizer, _stats = environment
        planned = planner.plan(
            parse_select(
                "SELECT celebrities.name FROM celebrities, spottedstars "
                "WHERE samePerson(celebrities.image, spottedstars.image)"
            ),
            query_id="q2",
        )
        physical_estimate = optimizer.estimate_plan_cost(planned.root)
        assert physical_estimate.dollars == pytest.approx(planned.chosen.cost.dollars)
        assert physical_estimate.hits == pytest.approx(planned.chosen.cost.hits)

    def test_clone_is_independent(self, environment):
        planner, optimizer, _stats = environment
        plan = planner.lower(parse_select("SELECT name FROM products"))
        original = plan.table_pipelines["products"]
        copy = original.clone()
        optimizer.estimate_logical_cost(copy)
        assert copy.estimated_rows == 12
        assert original.estimated_rows is None
