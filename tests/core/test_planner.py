"""Unit tests for the query planner (SQL → physical operator trees)."""

import pytest

from repro.core.exec.context import QueryConfig
from repro.core.lang.sql_parser import parse_select
from repro.core.operators import (
    CrowdFilterOperator,
    CrowdGenerateOperator,
    CrowdJoinOperator,
    CrowdSortOperator,
    GroupByOperator,
    LimitOperator,
    LocalFilterOperator,
    ProjectOperator,
    ResultSinkOperator,
    ScanOperator,
)
from repro.core.operators.sort_local import LocalSortOperator
from repro.core.optimizer.cost_model import CostModel
from repro.core.optimizer.optimizer import QueryOptimizer
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.plan.planner import QueryPlanner
from repro.core.plan.registry import TaskRegistry
from repro.errors import PlanError
from repro.storage import Database
from repro.workloads import CelebrityWorkload, CompaniesWorkload, ProductsWorkload


@pytest.fixture
def environment():
    database = Database()
    companies = CompaniesWorkload(n_companies=10, seed=1)
    celebrities = CelebrityWorkload(n_celebrities=9, n_spotted=9, seed=2)
    products = ProductsWorkload(n_products=12, seed=3)
    companies.install(database)
    celebrities.install(database)
    products.install(database)
    registry = TaskRegistry()
    registry.register(companies.findceo_spec())
    registry.register(
        celebrities.sameperson_spec(),
        left_payload=celebrities.left_payload,
        right_payload=celebrities.right_payload,
    )
    registry.register(products.color_filter_spec())
    registry.register(products.size_rating_spec(), payload=lambda row: {"name": row["name"]})
    registry.register(products.size_compare_spec(), payload=lambda row: {"name": row["name"]})
    optimizer = QueryOptimizer(StatisticsManager(), CostModel())
    planner = QueryPlanner(database, registry, optimizer, config=QueryConfig())
    return planner, database


def operators_of(planned, operator_type):
    return [op for op in planned.root.walk() if isinstance(op, operator_type)]


class TestQuery1Planning:
    def test_generate_operator_inserted_and_fields_rewritten(self, environment):
        planner, _db = environment
        statement = parse_select(
            "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone FROM companies"
        )
        planned = planner.plan(statement, query_id="q1")
        assert isinstance(planned.root, ResultSinkOperator)
        generates = operators_of(planned, CrowdGenerateOperator)
        assert len(generates) == 1  # the two uses share one operator (and one HIT per company)
        assert planned.output_schema.names == ("companyName", "findCEO.CEO", "findCEO.Phone")

    def test_distinct_argument_sets_get_distinct_operators(self, environment):
        planner, _db = environment
        statement = parse_select(
            "SELECT findCEO(companyName).CEO, findCEO(industry).CEO AS other FROM companies"
        )
        planned = planner.plan(statement, query_id="q1")
        assert len(operators_of(planned, CrowdGenerateOperator)) == 2


class TestQuery2Planning:
    def test_join_predicate_becomes_crowd_join(self, environment):
        planner, _db = environment
        statement = parse_select(
            "SELECT celebrities.name, spottedstars.id FROM celebrities, spottedstars "
            "WHERE samePerson(celebrities.image, spottedstars.image)"
        )
        planned = planner.plan(statement, query_id="q2")
        joins = operators_of(planned, CrowdJoinOperator)
        assert len(joins) == 1
        assert len(joins[0].children) == 2
        assert {type(c) for c in joins[0].children} == {ScanOperator}

    def test_two_tables_without_join_predicate_rejected(self, environment):
        planner, _db = environment
        statement = parse_select("SELECT celebrities.name FROM celebrities, spottedstars")
        with pytest.raises(PlanError, match="join predicate"):
            planner.plan(statement)

    def test_more_than_two_tables_rejected(self, environment):
        planner, _db = environment
        statement = parse_select(
            "SELECT companyName FROM companies, celebrities, spottedstars "
            "WHERE samePerson(celebrities.image, spottedstars.image)"
        )
        with pytest.raises(PlanError):
            planner.plan(statement)


class TestFilterPlanning:
    def test_local_predicates_pushed_below_crowd_filters(self, environment):
        planner, _db = environment
        statement = parse_select(
            "SELECT name FROM products WHERE isTargetColor(name) AND price < 50"
        )
        planned = planner.plan(statement, query_id="q3")
        crowd_filters = operators_of(planned, CrowdFilterOperator)
        local_filters = operators_of(planned, LocalFilterOperator)
        assert len(crowd_filters) == 1 and len(local_filters) == 1
        # The local filter must sit below the crowd filter (closer to the scan).
        assert isinstance(crowd_filters[0].children[0], LocalFilterOperator)

    def test_negated_crowd_filter(self, environment):
        planner, _db = environment
        statement = parse_select("SELECT name FROM products WHERE NOT isTargetColor(name)")
        planned = planner.plan(statement)
        crowd_filters = operators_of(planned, CrowdFilterOperator)
        assert crowd_filters[0].negate is True

    def test_unknown_udf_treated_as_error(self, environment):
        planner, _db = environment
        statement = parse_select("SELECT name FROM products WHERE mysteryFunc(name)")
        with pytest.raises(PlanError):
            planner.plan(statement)

    def test_unknown_column_rejected(self, environment):
        planner, _db = environment
        statement = parse_select("SELECT name FROM products WHERE nonexistent > 3")
        with pytest.raises(PlanError, match="unknown column"):
            planner.plan(statement)


class TestOrderGroupLimitPlanning:
    def test_crowd_order_by_uses_crowd_sort(self, environment):
        planner, _db = environment
        statement = parse_select("SELECT name FROM products ORDER BY rateSize(name) LIMIT 3")
        planned = planner.plan(statement, query_id="q4")
        sorts = operators_of(planned, CrowdSortOperator)
        limits = operators_of(planned, LimitOperator)
        assert len(sorts) == 1 and len(limits) == 1

    def test_local_order_by_uses_local_sort(self, environment):
        planner, _db = environment
        statement = parse_select("SELECT name FROM products ORDER BY price ASC")
        planned = planner.plan(statement)
        assert len(operators_of(planned, LocalSortOperator)) == 1
        assert len(operators_of(planned, CrowdSortOperator)) == 0

    def test_group_by_with_aggregates(self, environment):
        planner, _db = environment
        statement = parse_select(
            "SELECT category, count(name) AS n, avg(price) AS mean_price "
            "FROM products GROUP BY category"
        )
        planned = planner.plan(statement)
        groups = operators_of(planned, GroupByOperator)
        assert len(groups) == 1
        assert planned.output_schema.names == ("category", "n", "mean_price")

    def test_projection_names_are_unique(self, environment):
        planner, _db = environment
        statement = parse_select("SELECT name, name FROM products")
        planned = planner.plan(statement)
        project = operators_of(planned, ProjectOperator)[0]
        names = [item.alias for item in project.items]
        assert len(names) == len(set(names))
