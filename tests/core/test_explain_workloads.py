"""EXPLAIN coverage: every workload query renders a costed plan."""

import pytest

from repro.experiments import (
    QUERY1_SQL,
    QUERY2_SQL,
    build_celebrity_engine,
    build_companies_engine,
    build_products_engine,
)

PRODUCTS_QUERIES = (
    "SELECT name FROM products WHERE isTargetColor(name)",
    "SELECT name FROM products WHERE NOT isTargetColor(name) AND price < 50",
    "SELECT name FROM products ORDER BY biggerItem(name)",
    "SELECT name FROM products ORDER BY rateSize(name) LIMIT 4",
    "SELECT category, count(name) AS n, avg(price) AS mean_price "
    "FROM products GROUP BY category",
    "SELECT name FROM products ORDER BY price ASC",
)


def assert_valid_explain(text: str) -> None:
    assert "== logical plan" in text
    assert "== physical candidates" in text
    assert "(chosen)" in text
    assert "== chosen physical plan ==" in text


class TestExplainEveryWorkloadQuery:
    def test_companies_query1(self):
        run = build_companies_engine(n_companies=12)
        text = run.engine.explain(QUERY1_SQL)
        assert_valid_explain(text)
        assert "crowd-generate(findCEO)" in text

    def test_celebrities_query2(self):
        run = build_celebrity_engine(n_celebrities=8, n_spotted=8)
        text = run.engine.explain(QUERY2_SQL)
        assert_valid_explain(text)
        assert "crowd-join(samePerson" in text

    @pytest.mark.parametrize("sql", PRODUCTS_QUERIES)
    def test_products_queries(self, sql):
        run = build_products_engine(n_products=10)
        text = run.engine.explain(sql)
        assert_valid_explain(text)

    def test_explain_reflects_observed_statistics(self):
        """Re-EXPLAINing after a run uses tightened selectivities."""
        run = build_products_engine(n_products=10)
        engine = run.engine
        before = engine.explain("SELECT name FROM products WHERE isTargetColor(name)")
        handle = engine.query("SELECT name FROM products WHERE isTargetColor(name)")
        handle.wait()
        after = engine.explain("SELECT name FROM products WHERE isTargetColor(name)")
        assert before != after  # cardinality annotations moved with the data
