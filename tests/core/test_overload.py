"""Overload protection at the engine level: deadlines, backpressure, pressure.

Three families of tests:

* **Deadlines** — ``QueryConfig(deadline=...)`` either fails the query with
  :class:`~repro.errors.QueryDeadlineError` (``degradation="error"``) or
  finishes it ``DEGRADED`` with the rows landed so far
  (``degradation="partial"``).  The property test pins the degradation
  contract: a degraded result is a strict prefix of the same-seed
  unconstrained run — same rows in the same order, never more HITs, never
  more money.
* **Admission backpressure** — a bounded pending queue rejects overflow with
  a structured retry-after, or sheds the lowest-priority waiting query under
  ``overload_policy="shed"``; withdrawn queries leave cleanly.
* **Pressure shedding** — queries that opt in via ``shed_under_pressure``
  drop to single-assignment waves once half the deadline has elapsed or 80%
  of the budget is committed.

Every knob defaults off; the no-knob engine paths are covered by the
determinism audit, which must stay byte-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exec.context import QueryConfig
from repro.core.exec.handle import QueryStatus
from repro.errors import EngineOverloadedError, ExecutionError, QueryDeadlineError
from repro.experiments.harness import build_companies_engine, build_products_engine

pytestmark = pytest.mark.overload

CEO_SQL = (
    "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone FROM companies"
)
FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"


def ceo_engine():
    """Six-company lookup: completes at ~287 simulated seconds, $0.45."""
    return build_companies_engine(n_companies=6, seed=21, enable_cache=False).engine


# -- deadlines ---------------------------------------------------------------


class TestDeadlines:
    def test_error_mode_raises_a_diagnosed_deadline_error(self):
        engine = ceo_engine()
        handle = engine.query(CEO_SQL, config=QueryConfig(deadline=100.0))
        with pytest.raises(QueryDeadlineError) as excinfo:
            handle.wait()
        assert handle.status is QueryStatus.DEADLINE_EXCEEDED
        assert excinfo.value.query_id == handle.query_id
        assert excinfo.value.deadline == 100.0
        assert engine.scheduler.metrics.deadline_misses == 1
        events = [event.event for event in engine.scheduler.events_for(handle.query_id)]
        assert "deadline_exceeded" in events

    def test_partial_mode_returns_the_rows_landed_so_far(self):
        engine = ceo_engine()
        handle = engine.query(
            CEO_SQL, config=QueryConfig(deadline=200.0, degradation="partial")
        )
        rows = handle.wait()  # DEGRADED does not raise: partial is the contract
        assert handle.status is QueryStatus.DEGRADED
        assert 0 < len(rows) < 6
        assert engine.scheduler.metrics.queries_degraded == 1

    def test_generous_deadline_changes_nothing(self):
        unconstrained = ceo_engine()
        baseline = unconstrained.query(CEO_SQL).wait()
        engine = ceo_engine()
        handle = engine.query(
            CEO_SQL, config=QueryConfig(deadline=10_000.0, degradation="partial")
        )
        assert handle.wait() == baseline
        assert handle.status is QueryStatus.COMPLETED
        assert engine.clock.now == unconstrained.clock.now

    def test_deadline_cancels_pending_crowd_work(self):
        engine = ceo_engine()
        handle = engine.query(
            CEO_SQL, config=QueryConfig(deadline=100.0, degradation="partial")
        )
        handle.wait()
        # Nothing posted for this query may still be awaiting workers.
        assert engine.task_manager.pending_tasks(handle.query_id) == 0

    @pytest.mark.parametrize(
        "config",
        [
            {"deadline": 0.0},
            {"deadline": -10.0},
            {"deadline": 60.0, "degradation": "panic"},
        ],
        ids=["zero", "negative", "bad-mode"],
    )
    def test_bad_deadline_config_is_rejected_at_submit(self, config):
        engine = ceo_engine()
        with pytest.raises(ExecutionError):
            engine.query(CEO_SQL, config=QueryConfig(**config))


class TestDegradationPrefixProperty:
    """The paper-facing guarantee: a deadline only cancels *future* work.

    Everything up to the cut is identical to the unconstrained same-seed
    run, so whatever the deadline, the degraded result must be a prefix of
    the full result with no extra HITs and no extra spend.
    """

    @staticmethod
    def _full_run():
        engine = ceo_engine()
        rows = engine.query(CEO_SQL).wait()
        return rows, engine.total_crowd_cost, engine.platform.stats.hits_created

    @given(deadline=st.floats(min_value=10.0, max_value=600.0))
    @settings(max_examples=12, deadline=None)
    def test_degraded_result_is_a_prefix_of_the_full_run(self, deadline):
        full_rows, full_cost, full_hits = self._full_run()
        engine = ceo_engine()
        handle = engine.query(
            CEO_SQL, config=QueryConfig(deadline=deadline, degradation="partial")
        )
        rows = handle.wait()
        assert handle.status in (QueryStatus.DEGRADED, QueryStatus.COMPLETED)
        # Same rows, same order, possibly fewer: a strict prefix.
        assert rows == full_rows[: len(rows)]
        # Never more crowd work, never over-billed.
        assert engine.platform.stats.hits_created <= full_hits
        assert engine.total_crowd_cost <= full_cost + 1e-9
        if handle.status is QueryStatus.COMPLETED:
            assert rows == full_rows


# -- admission backpressure --------------------------------------------------


def bounded_engine(**overrides):
    kwargs = {
        "max_concurrent_queries": 1,
        "admission_queue_limit": 1,
        "overload_retry_after": 45.0,
    }
    kwargs.update(overrides)
    return build_products_engine(n_products=4, seed=5, engine_kwargs=kwargs).engine


class TestAdmissionBackpressure:
    def test_overflow_is_rejected_with_a_structured_retry_after(self):
        engine = bounded_engine()
        active = engine.query(FILTER_SQL)
        queued = engine.query(FILTER_SQL)
        assert engine.scheduler.state_of(active.query_id) == "active"
        assert engine.scheduler.state_of(queued.query_id) == "queued"
        with pytest.raises(EngineOverloadedError) as excinfo:
            engine.query(FILTER_SQL)
        assert excinfo.value.retry_after == 45.0
        assert engine.scheduler.metrics.queries_rejected == 1
        # The survivors are untouched and still complete.
        assert active.wait() is not None
        assert queued.wait() is not None

    def test_shed_policy_evicts_the_lowest_priority_waiter(self):
        engine = bounded_engine(overload_policy="shed")
        engine.query(FILTER_SQL)  # occupies the only slot
        victim = engine.query(FILTER_SQL, priority=1.0)
        vip = engine.query(FILTER_SQL, priority=2.0)  # overflows: victim is shed
        assert victim.status is QueryStatus.SHED
        assert isinstance(victim.error, EngineOverloadedError)
        assert engine.scheduler.state_of(vip.query_id) == "queued"
        assert engine.scheduler.metrics.queries_shed == 1
        with pytest.raises(EngineOverloadedError):
            victim.wait()
        assert vip.wait() is not None

    def test_shed_policy_still_rejects_a_newcomer_that_outranks_nobody(self):
        engine = bounded_engine(overload_policy="shed")
        engine.query(FILTER_SQL)
        survivor = engine.query(FILTER_SQL, priority=5.0)
        with pytest.raises(EngineOverloadedError):
            engine.query(FILTER_SQL, priority=1.0)
        assert engine.scheduler.metrics.queries_rejected == 1
        assert engine.scheduler.metrics.queries_shed == 0
        assert survivor.status is QueryStatus.PENDING

    def test_withdraw_forgets_a_pending_query_but_not_an_admitted_one(self):
        engine = bounded_engine()
        active = engine.query(FILTER_SQL)
        queued = engine.query(FILTER_SQL)
        assert engine.scheduler.withdraw(queued.query_id) is True
        # The handle survives untouched for resubmission elsewhere.
        assert queued.status is QueryStatus.PENDING
        assert engine.scheduler.state_of(queued.query_id) == "finished"
        assert engine.scheduler.withdraw(active.query_id) is False
        assert engine.scheduler.withdraw("no-such-query") is False
        assert active.wait() is not None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"admission_queue_limit": -1},
            {"overload_policy": "panic"},
            {"overload_retry_after": 0.0},
        ],
        ids=lambda kwargs: next(iter(kwargs)),
    )
    def test_bad_overload_config_is_rejected(self, kwargs):
        with pytest.raises(ExecutionError):
            bounded_engine(**kwargs)


# -- pressure shedding -------------------------------------------------------


class TestPressureShedding:
    def test_deadline_pressure_fires_at_half_the_deadline(self):
        engine = ceo_engine()
        handle = engine.query(
            CEO_SQL,
            config=QueryConfig(
                deadline=400.0, degradation="partial", shed_under_pressure=True
            ),
        )
        rows = handle.wait()
        # The run takes ~287 simulated seconds, so pressure hits at 200 and
        # the query still completes — just with thinner redundancy.
        assert handle.status is QueryStatus.COMPLETED
        assert len(rows) == 6
        assert engine.scheduler.metrics.queries_pressured == 1
        shed_events = [
            event
            for event in engine.scheduler.events_for(handle.query_id)
            if event.event == "pressure_shed"
        ]
        assert len(shed_events) == 1
        assert "deadline" in shed_events[0].detail

    def test_budget_pressure_fires_at_eighty_percent_committed(self):
        engine = ceo_engine()
        handle = engine.query(
            CEO_SQL, config=QueryConfig(budget=0.50, shed_under_pressure=True)
        )
        rows = handle.wait()
        assert handle.status is QueryStatus.COMPLETED
        assert len(rows) == 6
        assert engine.scheduler.metrics.queries_pressured == 1
        shed_events = [
            event
            for event in engine.scheduler.events_for(handle.query_id)
            if event.event == "pressure_shed"
        ]
        assert "budget committed" in shed_events[0].detail

    def test_without_opt_in_no_pressure_is_ever_applied(self):
        engine = ceo_engine()
        handle = engine.query(
            CEO_SQL, config=QueryConfig(deadline=400.0, degradation="partial")
        )
        handle.wait()
        assert engine.scheduler.metrics.queries_pressured == 0
