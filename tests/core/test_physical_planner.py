"""Unit tests for physical plan enumeration, costing and EXPLAIN."""

import pytest

from repro.core.lang.sql_parser import parse_select
from repro.core.operators import CrowdJoinOperator, CrowdSortOperator, JoinStrategy
from repro.core.operators.crowd_sort import SortStrategy
from repro.core.optimizer.cost_model import CostModel
from repro.core.optimizer.optimizer import OptimizerConfig, QueryOptimizer
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.plan.planner import QueryPlanner
from repro.core.plan.registry import TaskRegistry
from repro.core.tasks.spec import (
    JoinColumnsResponse,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.errors import PlanError
from repro.storage import Database, DataType, Schema, Table
from repro.workloads import ProductsWorkload


def build_three_table_db():
    database = Database()
    for name, size in (("a", 4), ("b", 8), ("c", 16)):
        table = Table(name, Schema.of(("x", DataType.STRING)))
        for index in range(size):
            table.insert([f"{name}{index}"])
        database.catalog.register(table)
    registry = TaskRegistry()
    registry.register(
        TaskSpec(
            name="sameAB",
            task_type=TaskType.JOIN_PREDICATE,
            text="?",
            response=JoinColumnsResponse("L", "R", left_per_hit=3, right_per_hit=3),
            price=0.02,
            assignments=3,
        )
    )
    registry.register(
        TaskSpec(
            name="sameBC",
            task_type=TaskType.JOIN_PREDICATE,
            text="?",
            response=YesNoResponse(),
            price=0.02,
            assignments=3,
            batch_size=5,
        )
    )
    return database, registry


def build_planner(database, registry, **config):
    statistics = StatisticsManager()
    optimizer = QueryOptimizer(statistics, CostModel(), OptimizerConfig(**config))
    return QueryPlanner(database, registry, optimizer), statistics


TWO_JOIN_SQL = "SELECT a.x FROM a, b, c WHERE sameAB(a.x, b.x) AND sameBC(b.x, c.x)"


class TestJoinEnumeration:
    def test_two_crowd_join_query_enumerates_candidates(self):
        database, registry = build_three_table_db()
        planner, _stats = build_planner(database, registry)
        planned = planner.plan(parse_select(TWO_JOIN_SQL), query_id="q1")
        # 2 valid join orders x 2 interfaces for the JoinColumns predicate.
        assert len(planned.candidates) >= 2
        assert planned.chosen is planned.candidates[
            min(
                range(len(planned.candidates)),
                key=lambda i: (planned.candidates[i].cost.dollars, planned.candidates[i].cost.hits),
            )
        ]
        # The winner is strictly the cost-minimal candidate.
        assert all(
            planned.chosen.cost.dollars <= candidate.cost.dollars
            for candidate in planned.candidates
        )
        orders = {
            decision
            for candidate in planned.candidates
            for decision in candidate.decisions
            if decision.startswith("join order:")
        }
        assert len(orders) == 2  # both left-deep orders were costed

    def test_built_plan_carries_chosen_interfaces(self):
        database, registry = build_three_table_db()
        planner, _stats = build_planner(database, registry)
        planned = planner.plan(parse_select(TWO_JOIN_SQL), query_id="q1")
        joins = [op for op in planned.root.walk() if isinstance(op, CrowdJoinOperator)]
        assert len(joins) == 2
        by_name = {join.spec.name: join for join in joins}
        assert by_name["sameAB"].strategy is JoinStrategy.COLUMNS
        assert by_name["sameBC"].strategy is JoinStrategy.PAIRWISE  # yes/no spec
        # Planned cardinalities are stamped for the adaptive replanner.
        assert all(join.planned_left_rows is not None for join in joins)

    def test_yes_no_spec_never_plans_columns(self):
        database, registry = build_three_table_db()
        planner, _stats = build_planner(database, registry)
        planned = planner.plan(parse_select(TWO_JOIN_SQL), query_id="q1")
        for candidate in planned.candidates:
            assert "join[sameBC]: columns" not in candidate.decisions

    def test_disconnected_tables_rejected(self):
        database, registry = build_three_table_db()
        planner, _stats = build_planner(database, registry)
        statement = parse_select("SELECT a.x FROM a, b, c WHERE sameAB(a.x, b.x)")
        with pytest.raises(PlanError, match="join predicate"):
            planner.plan(statement)


def build_products_planner(**config):
    database = Database()
    products = ProductsWorkload(n_products=12, seed=3)
    products.install(database)
    registry = TaskRegistry()
    registry.register(products.color_filter_spec())
    registry.register(products.size_compare_spec(), payload=lambda row: {"name": row["name"]})
    registry.register(products.size_rating_spec(), payload=lambda row: {"name": row["name"]})
    planner, statistics = build_planner(database, registry, **config)
    return planner, statistics


class TestSortEnumeration:
    def test_response_policy_keeps_comparison(self):
        planner, _stats = build_products_planner(sort_policy="response")
        planned = planner.plan(
            parse_select("SELECT name FROM products ORDER BY biggerItem(name)"), query_id="q1"
        )
        sorts = [op for op in planned.root.walk() if isinstance(op, CrowdSortOperator)]
        assert sorts[0].strategy is SortStrategy.COMPARISON
        assert len(planned.candidates) == 1

    def test_cost_policy_enumerates_both_and_picks_cheaper(self):
        planner, _stats = build_products_planner(sort_policy="cost")
        planned = planner.plan(
            parse_select("SELECT name FROM products ORDER BY biggerItem(name)"), query_id="q1"
        )
        assert len(planned.candidates) == 2
        strategies = {
            decision for c in planned.candidates for decision in c.decisions
        }
        assert "sort[biggerItem]: comparison" in strategies
        assert "sort[biggerItem]: rating" in strategies
        # 12 rows: 66 comparisons versus 12 ratings — rating is cheaper.
        sorts = [op for op in planned.root.walk() if isinstance(op, CrowdSortOperator)]
        assert sorts[0].strategy is SortStrategy.RATING

    def test_rating_response_is_never_enumerated_as_comparison(self):
        planner, _stats = build_products_planner(sort_policy="cost")
        planned = planner.plan(
            parse_select("SELECT name FROM products ORDER BY rateSize(name)"), query_id="q1"
        )
        assert len(planned.candidates) == 1
        sorts = [op for op in planned.root.walk() if isinstance(op, CrowdSortOperator)]
        assert sorts[0].strategy is SortStrategy.RATING


class TestFilterPlacement:
    def build(self):
        database = Database()
        for name, size in (("a", 4), ("b", 40)):
            table = Table(name, Schema.of(("x", DataType.STRING)))
            for index in range(size):
                table.insert([f"{name}{index}"])
            database.catalog.register(table)
        registry = TaskRegistry()
        registry.register(
            TaskSpec(
                name="sameAB",
                task_type=TaskType.JOIN_PREDICATE,
                text="?",
                response=YesNoResponse(),  # pairwise: cost scales with the cross product
                price=0.02,
                assignments=3,
            )
        )
        registry.register(
            TaskSpec(
                name="goodB",
                task_type=TaskType.FILTER,
                text="?",
                response=YesNoResponse(),
                price=0.01,
                assignments=3,
            )
        )
        return build_planner(database, registry)

    def test_both_placements_enumerated(self):
        planner, _stats = self.build()
        statement = parse_select("SELECT a.x FROM a, b WHERE sameAB(a.x, b.x) AND goodB(b.x)")
        planned = planner.plan(statement, query_id="q1")
        placements = {
            decision
            for candidate in planned.candidates
            for decision in candidate.decisions
            if decision.startswith("filter[goodB]")
        }
        assert placements == {"filter[goodB]: below join", "filter[goodB]: above join"}
        # A pairwise join pays per pair, so filtering 40 rows down to ~20
        # before the join is cheaper than joining first; and the winner must
        # be the cost-minimal candidate.
        assert "filter[goodB]: below join" in planned.chosen.decisions
        assert all(
            planned.chosen.cost.dollars <= candidate.cost.dollars
            for candidate in planned.candidates
        )


class TestCostingPassCaching:
    def test_spec_stats_fetched_once_per_costing_pass(self):
        """Regression: the generate-node cache-hit rate reads SpecStats once.

        The seed implementation called ``statistics.spec(name)`` twice per
        generate node per costing; the CostingPass snapshots each spec once
        per pass no matter how many quantities derive from it.
        """
        database = Database()
        from repro.workloads import CompaniesWorkload

        companies = CompaniesWorkload(n_companies=10, seed=1)
        companies.install(database)
        registry = TaskRegistry()
        registry.register(companies.findceo_spec())
        statistics = StatisticsManager()
        calls: list[str] = []
        original = StatisticsManager.spec

        def counting_spec(self, name):
            calls.append(name)
            return original(self, name)

        StatisticsManager.spec = counting_spec
        try:
            optimizer = QueryOptimizer(statistics, CostModel())
            planner = QueryPlanner(database, registry, optimizer)
            plan = planner.lower(
                parse_select("SELECT companyName, findCEO(companyName).CEO FROM companies")
            )
            tree = planner.physical.default_tree(plan)
            calls.clear()
            optimizer.estimate_logical_cost(tree)
        finally:
            StatisticsManager.spec = original
        assert calls.count("findCEO") == 1


class TestExplain:
    def test_explain_lists_candidates_and_choice(self):
        database, registry = build_three_table_db()
        planner, _stats = build_planner(database, registry)
        text = planner.explain(parse_select(TWO_JOIN_SQL))
        assert "== logical plan" in text
        assert "== physical candidates (4 enumerated) ==" in text
        assert "(chosen)" in text
        assert "crowd-join(sameAB,columns)" in text

    def test_explain_is_side_effect_free(self):
        database, registry = build_three_table_db()
        planner, _stats = build_planner(database, registry)
        before = set(database.catalog.names()) if hasattr(database.catalog, "names") else None
        planner.explain(parse_select(TWO_JOIN_SQL))
        if before is not None:
            assert set(database.catalog.names()) == before
