"""Unit tests for the cost model and the query optimizer's decisions."""

import pytest

from repro.core.operators import (
    CrowdFilterOperator,
    CrowdJoinOperator,
    JoinStrategy,
    ResultSinkOperator,
    ScanOperator,
)
from repro.core.optimizer.cost_model import CostEstimate, CostModel
from repro.core.optimizer.optimizer import OptimizerConfig, QueryOptimizer, majority_accuracy
from repro.core.optimizer.statistics import StatisticsManager
from repro.errors import OptimizerError
from repro.core.tasks.spec import (
    ComparisonResponse,
    JoinColumnsResponse,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.storage import ColumnRef, DataType, Schema, Table


FILTER = TaskSpec(name="f", task_type=TaskType.FILTER, text="?", response=YesNoResponse(), price=0.01, assignments=3)
JOIN_COLUMNS = TaskSpec(
    name="j", task_type=TaskType.JOIN_PREDICATE, text="?",
    response=JoinColumnsResponse("L", "R", left_per_hit=3, right_per_hit=3),
    price=0.02, assignments=3,
)
JOIN_PAIRS = TaskSpec(
    name="jp", task_type=TaskType.JOIN_PREDICATE, text="?", response=YesNoResponse(),
    price=0.02, assignments=3,
)
RANK = TaskSpec(name="r", task_type=TaskType.RANK, text="?", response=ComparisonResponse(), price=0.01)


class TestOptimizerConfigValidation:
    def test_even_candidate_assignments_rejected(self):
        with pytest.raises(OptimizerError, match="odd"):
            OptimizerConfig(candidate_assignments=(1, 2, 3))

    def test_non_positive_candidates_rejected(self):
        with pytest.raises(OptimizerError):
            OptimizerConfig(candidate_assignments=(0, 3))

    def test_empty_candidates_rejected(self):
        with pytest.raises(OptimizerError, match="empty"):
            OptimizerConfig(candidate_assignments=())

    def test_bad_target_confidence_rejected(self):
        with pytest.raises(OptimizerError, match="target_confidence"):
            OptimizerConfig(target_confidence=0.0)

    def test_bad_sort_policy_rejected(self):
        with pytest.raises(OptimizerError, match="sort_policy"):
            OptimizerConfig(sort_policy="vibes")

    def test_odd_candidates_accepted(self):
        config = OptimizerConfig(candidate_assignments=(1, 3, 9), max_assignments=9)
        assert config.candidate_assignments == (1, 3, 9)

    def test_max_assignments_must_cover_a_candidate(self):
        with pytest.raises(OptimizerError, match="excludes"):
            OptimizerConfig(candidate_assignments=(5, 7), max_assignments=4)

    def test_fallback_redundancy_stays_odd(self):
        # max_assignments caps below the largest candidate; the fallback must
        # return the largest odd *candidate* within the cap, never the even cap.
        statistics = StatisticsManager()
        optimizer = QueryOptimizer(
            statistics,
            CostModel(),
            OptimizerConfig(
                default_worker_accuracy=0.6, target_confidence=0.99, max_assignments=4
            ),
        )
        assert optimizer.choose_assignments(FILTER) == 3


class TestMajorityAccuracyMemoization:
    def test_repeat_calls_hit_the_cache(self):
        majority_accuracy.cache_clear()
        assert majority_accuracy(0.815, 3) == majority_accuracy(0.815, 3)
        info = majority_accuracy.cache_info()
        assert info.hits >= 1 and info.misses == 1


class TestMajorityAccuracy:
    def test_single_worker_is_raw_accuracy(self):
        assert majority_accuracy(0.8, 1) == pytest.approx(0.8)

    def test_redundancy_amplifies_accuracy(self):
        assert majority_accuracy(0.8, 3) > 0.8
        assert majority_accuracy(0.8, 5) > majority_accuracy(0.8, 3)

    def test_redundancy_hurts_below_half(self):
        assert majority_accuracy(0.4, 5) < 0.4

    def test_bounds(self):
        assert majority_accuracy(1.0, 7) == pytest.approx(1.0)
        assert majority_accuracy(0.0, 3) == pytest.approx(0.0)


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()

    def test_hit_cost_includes_fee_and_redundancy(self):
        assert self.model.hit_cost(FILTER) == pytest.approx(3 * 0.015)

    def test_filter_cost_scales_with_rows_and_batching(self):
        unbatched = self.model.filter_cost(FILTER, 100)
        batched = self.model.filter_cost(FILTER, 100, batch_size=10)
        assert unbatched.hits == 100
        assert batched.hits == 10
        assert batched.dollars < unbatched.dollars

    def test_join_columns_much_cheaper_than_pairwise(self):
        pairwise = self.model.join_cost_pairwise(JOIN_PAIRS, 30, 30)
        columns = self.model.join_cost_columns(JOIN_COLUMNS, 30, 30)
        assert pairwise.hits == 900
        assert columns.hits == 100
        assert columns.dollars < pairwise.dollars

    def test_prefilter_reduces_pairwise_cost(self):
        full = self.model.join_cost_pairwise(JOIN_PAIRS, 30, 30)
        filtered = self.model.join_cost_pairwise(JOIN_PAIRS, 30, 30, candidate_fraction=0.1)
        assert filtered.dollars < full.dollars

    def test_sort_costs(self):
        comparison = self.model.sort_cost_comparison(RANK, 20)
        rating = self.model.sort_cost_rating(RANK, 20)
        assert comparison.tasks == pytest.approx(190)
        assert rating.tasks == 20
        assert rating.dollars < comparison.dollars

    def test_zero_rows_cost_nothing(self):
        assert self.model.filter_cost(FILTER, 0).dollars == 0.0
        assert self.model.join_cost_columns(JOIN_COLUMNS, 0, 10).dollars == 0.0

    def test_latency_grows_slowly_with_hits(self):
        few = self.model.filter_cost(FILTER, 2)
        many = self.model.filter_cost(FILTER, 200)
        assert many.latency_seconds > few.latency_seconds
        assert many.latency_seconds < few.latency_seconds * 3

    def test_estimate_plus_combines(self):
        a = CostEstimate(tasks=1, hits=1, dollars=0.1, latency_seconds=100)
        b = CostEstimate(tasks=2, hits=2, dollars=0.2, latency_seconds=300)
        combined = a.plus(b)
        assert combined.dollars == pytest.approx(0.3)
        assert combined.latency_seconds == 300


class TestQueryOptimizer:
    def build(self, **config):
        statistics = StatisticsManager()
        optimizer = QueryOptimizer(statistics, CostModel(), OptimizerConfig(**config))
        return statistics, optimizer

    def test_choose_assignments_meets_target(self):
        _stats, optimizer = self.build(default_worker_accuracy=0.85, target_confidence=0.9)
        assert optimizer.choose_assignments(FILTER) == 3
        _stats, optimizer = self.build(default_worker_accuracy=0.99, target_confidence=0.9)
        assert optimizer.choose_assignments(FILTER) == 1
        _stats, optimizer = self.build(default_worker_accuracy=0.7, target_confidence=0.95)
        assert optimizer.choose_assignments(FILTER) == 7

    def test_choose_assignments_adapts_to_observed_agreement(self):
        statistics, optimizer = self.build(default_worker_accuracy=0.7, target_confidence=0.9)
        spec_stats = statistics.spec(FILTER.name)
        spec_stats.crowd_tasks = 50
        spec_stats.total_agreement = 50 * 0.99
        assert optimizer.choose_assignments(FILTER) == 1

    def test_join_strategy_prefers_columns_for_large_inputs(self):
        _stats, optimizer = self.build()
        choice = optimizer.choose_join_strategy(JOIN_COLUMNS, 30, 30)
        assert choice.strategy is JoinStrategy.COLUMNS
        assert choice.estimate.dollars > 0

    def test_sort_strategy_by_cost(self):
        _stats, optimizer = self.build()
        from repro.core.operators.crowd_sort import SortStrategy

        assert optimizer.choose_sort_strategy(RANK, 3) is SortStrategy.COMPARISON
        assert optimizer.choose_sort_strategy(RANK, 100) is SortStrategy.RATING

    def test_estimate_plan_cost_walks_operators(self):
        statistics, optimizer = self.build()
        table_a = Table("a", Schema.of(("x", DataType.STRING)))
        table_b = Table("b", Schema.of(("y", DataType.STRING)))
        for i in range(12):
            table_a.insert([f"a{i}"])
            table_b.insert([f"b{i}"])
        scan_a, scan_b = ScanOperator(table_a), ScanOperator(table_b)
        filter_a = CrowdFilterOperator(FILTER, [ColumnRef("a.x")], scan_a.output_schema)
        filter_a.add_child(scan_a)
        join = CrowdJoinOperator(JOIN_COLUMNS, filter_a.output_schema, scan_b.output_schema)
        join.add_child(filter_a)
        join.add_child(scan_b)
        results = Table("__results", join.output_schema)
        sink = ResultSinkOperator(results)
        sink.add_child(join)
        estimate = optimizer.estimate_plan_cost(sink)
        assert estimate.dollars > 0
        assert estimate.hits >= 12  # 12 filter HITs plus join blocks
