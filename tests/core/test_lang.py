"""Unit tests for the lexer, SQL parser and TASK-definition parser."""

import pytest

from repro.core.lang import parse_select, parse_task, parse_tasks, tokenize
from repro.core.lang.lexer import TokenType
from repro.core.tasks.spec import (
    FormResponse,
    JoinColumnsResponse,
    RatingResponse,
    TaskType,
    YesNoResponse,
)
from repro.errors import ParseError
from repro.storage.expressions import (
    BooleanOp,
    ColumnRef,
    Comparison,
    FieldAccess,
    FunctionCall,
    Literal,
    Not,
)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a.b, 'text' 3.5 >= -- comment\n)")
        values = [(t.type, t.value) for t in tokens[:-1]]
        assert (TokenType.IDENT, "SELECT") in values
        assert (TokenType.STRING, "text") in values
        assert (TokenType.NUMBER, "3.5") in values
        assert (TokenType.OPERATOR, ">=") in values
        assert values[-1] == (TokenType.SYMBOL, ")")
        assert tokens[-1].type is TokenType.EOF

    def test_positions_are_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestSQLParser:
    def test_query_1_from_the_paper(self):
        statement = parse_select(
            "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
            "FROM companies"
        )
        assert [t.name for t in statement.from_tables] == ["companies"]
        assert isinstance(statement.select_items[0].expression, ColumnRef)
        second = statement.select_items[1].expression
        assert isinstance(second, FieldAccess) and second.field == "CEO"
        assert isinstance(second.base, FunctionCall) and second.base.name == "findCEO"

    def test_query_2_from_the_paper(self):
        statement = parse_select(
            "SELECT celebrities.name, spottedstars.id "
            "FROM celebrities, spottedstars "
            "WHERE samePerson(celebrities.image, spottedstars.image)"
        )
        assert len(statement.from_tables) == 2
        where = statement.where
        assert isinstance(where, FunctionCall) and where.name == "samePerson"
        assert [str(a) for a in where.args] == ["celebrities.image", "spottedstars.image"]

    def test_aliases_group_order_limit_budget(self):
        statement = parse_select(
            "SELECT category, count(name) AS n FROM products p "
            "WHERE price < 100 AND NOT isTargetColor(name) "
            "GROUP BY category ORDER BY n DESC LIMIT 5 BUDGET 2.50"
        )
        assert statement.from_tables[0].alias == "p"
        assert statement.group_by == ("category",)
        assert statement.limit == 5
        assert statement.budget == pytest.approx(2.5)
        assert statement.order_by[0].ascending is False
        where = statement.where
        assert isinstance(where, BooleanOp) and where.op == "and"
        assert isinstance(where.right, Not)

    def test_expression_precedence_and_literals(self):
        statement = parse_select("SELECT a FROM t WHERE a + 2 * 3 = 7 OR b = TRUE AND c = NULL")
        where = statement.where
        assert isinstance(where, BooleanOp) and where.op == "or"
        left = where.left
        assert isinstance(left, Comparison)
        assert isinstance(where.right, BooleanOp) and where.right.op == "and"

    def test_string_and_negative_literals(self):
        statement = parse_select("SELECT a FROM t WHERE name = 'Acme' AND delta = -3")
        conjuncts = statement.where
        assert isinstance(conjuncts, BooleanOp)
        assert isinstance(conjuncts.left.right, Literal)
        assert conjuncts.left.right.value == "Acme"

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_select("SELECT FROM t")
        with pytest.raises(ParseError):
            parse_select("SELECT a")
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t WHERE")
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t extra garbage here ,")

    def test_trailing_semicolon_ok(self):
        assert parse_select("SELECT a FROM t;").limit is None


TASK1 = """
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
    TaskType: Question
    Text: "Find the CEO and the CEO's phone number for the company %s", companyName
    Response: Form(("CEO", String), ("Phone", String))
    Price: 0.02
    Assignments: 3
    BatchSize: 2
    Combiner: FieldwiseMajority
"""

TASK2 = """
TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS BOOL:
    TaskType: JoinPredicate
    Text: "Drag a picture of any Celebrity in the left column to their matching picture"
    Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted, 4, 4)
"""


class TestTaskParser:
    def test_task_1_from_the_paper(self):
        spec = parse_task(TASK1)
        assert spec.name == "findCEO"
        assert spec.task_type is TaskType.QUESTION
        assert isinstance(spec.response, FormResponse)
        assert spec.response.field_names == ("CEO", "Phone")
        assert spec.parameters[0].name == "companyName"
        assert spec.return_field_names == ("CEO", "Phone")
        assert spec.price == pytest.approx(0.02)
        assert spec.assignments == 3
        assert spec.batch_size == 2
        assert spec.combiner == "FieldwiseMajority"
        assert spec.render_text("Acme").endswith("company Acme")

    def test_task_2_from_the_paper(self):
        spec = parse_task(TASK2)
        assert spec.task_type is TaskType.JOIN_PREDICATE
        assert spec.returns_bool
        response = spec.response
        assert isinstance(response, JoinColumnsResponse)
        assert response.left_label == "Celebrity"
        assert response.left_per_hit == 4
        assert [p.type_name for p in spec.parameters] == ["Image[]", "Image[]"]

    def test_multiple_tasks_in_one_text(self):
        specs = parse_tasks(TASK1 + "\n" + TASK2)
        assert [s.name for s in specs] == ["findCEO", "samePerson"]

    def test_default_responses_for_filter_and_rank(self):
        spec = parse_task(
            "TASK isRed(String name) RETURNS BOOL:\n"
            "    TaskType: Filter\n"
            "    Text: \"Is %s red?\", name\n"
        )
        assert isinstance(spec.response, YesNoResponse)
        rating = parse_task(
            "TASK rateIt(String name) RETURNS BOOL:\n"
            "    TaskType: Rating\n"
            "    Text: \"Rate it\"\n"
            "    Response: Rating(1, 5)\n"
        )
        assert isinstance(rating.response, RatingResponse)
        assert rating.response.scale == (1, 5)

    def test_missing_tasktype_is_an_error(self):
        with pytest.raises(ParseError):
            parse_task("TASK broken(String a) RETURNS BOOL:\n    Text: \"hi\"\n")

    def test_question_without_response_is_an_error(self):
        with pytest.raises(ParseError):
            parse_task(
                "TASK q(String a) RETURNS (String B):\n    TaskType: Question\n    Text: \"x %s\", a\n"
            )

    def test_unknown_field_is_an_error(self):
        with pytest.raises(ParseError):
            parse_task(TASK1 + "    Wibble: 3\n")

    def test_parse_task_rejects_multiple_definitions(self):
        with pytest.raises(ParseError):
            parse_task(TASK1 + TASK2)
