"""Unit tests for physical operators driven through a real (simulated-crowd) context."""

import pytest

from repro.core.exec.context import ExecutionContext, QueryConfig
from repro.core.exec.executor import QueryExecutor
from repro.core.operators import (
    AggregateSpec,
    CrowdFilterOperator,
    CrowdGenerateOperator,
    CrowdJoinOperator,
    CrowdSortOperator,
    GroupByOperator,
    JoinStrategy,
    LimitOperator,
    LocalFilterOperator,
    ProjectOperator,
    ProjectionItem,
    ResultSinkOperator,
    ScanOperator,
    SortStrategy,
)
from repro.core.operators.sort_local import LocalSortOperator
from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.task_manager import TaskManager
from repro.crowd import MTurkSimulator, PopulationMix, SimulationClock, WorkerPool
from repro.errors import OperatorError
from repro.storage import (
    Arithmetic,
    ColumnRef,
    Comparison,
    Database,
    DataType,
    Literal,
    Schema,
    Table,
)
from repro.workloads import CelebrityWorkload, CompaniesWorkload, CompositeOracle, ProductsWorkload


@pytest.fixture
def products():
    return ProductsWorkload(n_products=16, seed=21)


@pytest.fixture
def celebrities():
    return CelebrityWorkload(n_celebrities=6, n_spotted=6, seed=22)


@pytest.fixture
def companies():
    return CompaniesWorkload(n_companies=8, seed=23)


def build_runtime(oracles, seed=3, mix=None):
    database = Database()
    clock = SimulationClock()
    pool = WorkerPool(size=60, seed=seed, mix=mix or PopulationMix(diligent=1, noisy=0, lazy=0, spammer=0))
    platform = MTurkSimulator(clock, pool, CompositeOracle(oracles))
    statistics = StatisticsManager()
    budget = BudgetLedger()
    manager = TaskManager(platform, statistics, budget)
    context = ExecutionContext("q1", database, manager, statistics, budget, clock, QueryConfig(adaptive=False))
    return database, context


def execute(root, context):
    executor = QueryExecutor(root, context)
    executor.run()
    return executor


def sink_for(operator, database, query_id="q1"):
    table = database.create_results_table(operator.output_schema, query_id=query_id)
    sink = ResultSinkOperator(table)
    sink.add_child(operator)
    return sink, table


class TestLocalOperators:
    def test_project_and_local_filter(self):
        schema = Schema.of(("name", DataType.STRING), ("price", DataType.FLOAT))
        table = Table("t", schema)
        table.insert_many([["a", 5.0], ["b", 15.0], ["c", 25.0]])
        database, context = build_runtime({})
        scan = ScanOperator(table)
        keep = LocalFilterOperator(Comparison(">", ColumnRef("price"), Literal(10.0)), scan.output_schema)
        keep.add_child(scan)
        project = ProjectOperator([
            ProjectionItem("name", ColumnRef("t.name")),
            ProjectionItem("double_price", Arithmetic("*", ColumnRef("price"), Literal(2))),
        ])
        project.add_child(keep)
        sink, results = sink_for(project, database)
        execute(sink, context)
        assert [(r["name"], r["double_price"]) for r in results.rows()] == [("b", 30.0), ("c", 50.0)]

    def test_group_by_and_limit(self):
        schema = Schema.of(("category", DataType.STRING), ("price", DataType.FLOAT))
        table = Table("t", schema)
        table.insert_many([["a", 1.0], ["a", 3.0], ["b", 10.0]])
        database, context = build_runtime({})
        scan = ScanOperator(table)
        group = GroupByOperator(
            ["t.category"],
            [AggregateSpec("n", "count", None), AggregateSpec("total", "sum", ColumnRef("t.price"))],
            scan.output_schema,
        )
        group.add_child(scan)
        limit = LimitOperator(1, group.output_schema)
        limit.add_child(group)
        sink, results = sink_for(limit, database)
        execute(sink, context)
        rows = results.rows()
        assert len(rows) == 1
        assert rows[0]["t.category"] == "a"
        assert rows[0]["n"] == 2 and rows[0]["total"] == pytest.approx(4.0)

    def test_local_sort_orders_and_places_nulls_last(self):
        schema = Schema.of(("name", DataType.STRING), ("price", DataType.FLOAT))
        table = Table("t", schema)
        table.insert_many([["a", 5.0], ["b", None], ["c", 1.0]])
        database, context = build_runtime({})
        scan = ScanOperator(table)
        sort = LocalSortOperator(ColumnRef("price"), scan.output_schema, ascending=True)
        sort.add_child(scan)
        sink, results = sink_for(sort, database)
        execute(sink, context)
        assert [r["name"] for r in results.rows()] == ["c", "a", "b"]

    def test_limit_rejects_negative(self):
        with pytest.raises(OperatorError):
            LimitOperator(-1, Schema.of("a"))

    def test_aggregate_spec_validates_function(self):
        with pytest.raises(OperatorError):
            AggregateSpec("x", "median", None)


class TestCrowdFilterOperator:
    def test_keeps_only_rows_the_crowd_approves(self, products):
        database, context = build_runtime({"isTargetColor": products.oracle()})
        table = products.install(database)
        scan = ScanOperator(table)
        crowd_filter = CrowdFilterOperator(
            products.color_filter_spec(assignments=3), [ColumnRef("products.name")], scan.output_schema
        )
        crowd_filter.add_child(scan)
        sink, results = sink_for(crowd_filter, database)
        execute(sink, context)
        names = {row["products.name"] for row in results.rows()}
        assert names == products.true_target_names()

    def test_negated_filter_returns_complement(self, products):
        database, context = build_runtime({"isTargetColor": products.oracle()})
        table = products.install(database)
        scan = ScanOperator(table)
        crowd_filter = CrowdFilterOperator(
            products.color_filter_spec(assignments=1),
            [ColumnRef("products.name")],
            scan.output_schema,
            negate=True,
        )
        crowd_filter.add_child(scan)
        sink, results = sink_for(crowd_filter, database)
        execute(sink, context)
        names = {row["products.name"] for row in results.rows()}
        assert names == {r.name for r in products.records} - products.true_target_names()


class TestCrowdGenerateOperator:
    def test_widens_schema_with_task_returns(self, companies):
        database, context = build_runtime({"findCEO": companies.oracle()})
        table = companies.install(database)
        scan = ScanOperator(table)
        generate = CrowdGenerateOperator(
            companies.findceo_spec(assignments=3), [ColumnRef("companies.companyName")], scan.output_schema
        )
        generate.add_child(scan)
        sink, results = sink_for(generate, database)
        execute(sink, context)
        rows = results.rows()
        assert len(rows) == 8
        assert "findCEO.CEO" in rows[0].schema.names
        accuracy = companies.score_results(
            rows, company_column="companies.companyName", ceo_column="findCEO.CEO"
        )
        assert accuracy == 1.0


class TestCrowdJoinOperator:
    @pytest.mark.parametrize("strategy", [JoinStrategy.PAIRWISE, JoinStrategy.COLUMNS])
    def test_both_interfaces_find_the_true_matches(self, celebrities, strategy):
        database, context = build_runtime({"samePerson": celebrities.oracle()})
        celebs, spotted = celebrities.install(database)
        left, right = ScanOperator(celebs), ScanOperator(spotted)
        join = CrowdJoinOperator(
            celebrities.sameperson_spec(assignments=3),
            left.output_schema,
            right.output_schema,
            strategy=strategy,
            pairs_per_hit=4,
            left_payload=celebrities.left_payload,
            right_payload=celebrities.right_payload,
        )
        join.add_child(left)
        join.add_child(right)
        sink, results = sink_for(join, database)
        execute(sink, context)
        score = celebrities.score_results(results.rows())
        assert score["precision"] == 1.0 and score["recall"] == 1.0

    def test_columns_interface_posts_far_fewer_hits(self, celebrities):
        def run(strategy):
            database, context = build_runtime({"samePerson": celebrities.oracle()})
            celebs, spotted = celebrities.install(database)
            left, right = ScanOperator(celebs), ScanOperator(spotted)
            join = CrowdJoinOperator(
                celebrities.sameperson_spec(assignments=1),
                left.output_schema,
                right.output_schema,
                strategy=strategy,
                left_payload=celebrities.left_payload,
                right_payload=celebrities.right_payload,
            )
            join.add_child(left)
            join.add_child(right)
            sink, _results = sink_for(join, database)
            execute(sink, context)
            return context.statistics.query("q1").hits_posted

        assert run(JoinStrategy.COLUMNS) < run(JoinStrategy.PAIRWISE)

    def test_prefilter_reduces_pairs_asked(self, celebrities):
        database, context = build_runtime({"samePerson": celebrities.oracle()})
        celebs, spotted = celebrities.install(database)
        left, right = ScanOperator(celebs), ScanOperator(spotted)
        join = CrowdJoinOperator(
            celebrities.sameperson_spec(interface="pairs", assignments=1),
            left.output_schema,
            right.output_schema,
            strategy=JoinStrategy.PAIRWISE,
            left_payload=celebrities.left_payload,
            right_payload=celebrities.right_payload,
            prefilter=celebrities.feature_prefilter(0.5),
        )
        join.add_child(left)
        join.add_child(right)
        sink, results = sink_for(join, database)
        execute(sink, context)
        assert join.pairs_prefiltered > 0
        assert join.pairs_asked < join.pairs_considered
        score = celebrities.score_results(results.rows())
        assert score["recall"] >= 0.8


class TestCrowdSortOperator:
    def test_comparison_sort_recovers_the_true_order(self, products):
        database, context = build_runtime({"biggerItem": products.oracle()})
        table = products.install(database)
        scan = ScanOperator(table)
        sort = CrowdSortOperator(
            products.size_compare_spec(assignments=1),
            scan.output_schema,
            strategy=SortStrategy.COMPARISON,
            items_per_hit=10,
            payload=lambda row: {"name": row["name"]},
        )
        sort.add_child(scan)
        sink, results = sink_for(sort, database)
        execute(sink, context)
        observed = [row["products.name"] for row in results.rows()]
        rho = products.rank_correlation(products.true_size_order(), observed)
        assert rho > 0.9

    def test_rating_sort_is_cheaper_but_noisier(self, products):
        def run(strategy, spec):
            database, context = build_runtime({"rateSize": products.oracle(), "biggerItem": products.oracle()})
            table = products.install(database)
            scan = ScanOperator(table)
            sort = CrowdSortOperator(
                spec, scan.output_schema, strategy=strategy, items_per_hit=5,
                payload=lambda row: {"name": row["name"]},
            )
            sort.add_child(scan)
            sink, results = sink_for(sort, database)
            execute(sink, context)
            observed = [row["products.name"] for row in results.rows()]
            rho = products.rank_correlation(products.true_size_order(), observed)
            return rho, context.statistics.query("q1").spent

        rho_rating, cost_rating = run(SortStrategy.RATING, products.size_rating_spec(assignments=3))
        rho_compare, cost_compare = run(SortStrategy.COMPARISON, products.size_compare_spec(assignments=3))
        assert cost_rating < cost_compare
        assert rho_compare >= rho_rating

    def test_empty_and_single_row_inputs(self):
        schema = Schema.of(("name", DataType.STRING),)
        table = Table("t", schema)
        database, context = build_runtime({})
        scan = ScanOperator(table)
        products = ProductsWorkload(n_products=2, seed=1)
        sort = CrowdSortOperator(products.size_compare_spec(), scan.output_schema)
        sort.add_child(scan)
        sink, results = sink_for(sort, database)
        execute(sink, context)
        assert len(results) == 0
