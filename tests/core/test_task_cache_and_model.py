"""Unit tests for the Task Cache and the learned Task Model."""

import random

import pytest

from repro.core.tasks.spec import Parameter, TaskSpec, TaskType, YesNoResponse
from repro.core.tasks.task import Task, TaskKind
from repro.core.tasks.task_cache import TaskCache
from repro.core.tasks.task_model import LearnedTaskModel, TaskModelRegistry
from repro.errors import TaskError


class TestTaskCache:
    def test_miss_then_hit_tracks_savings(self):
        cache = TaskCache()
        assert cache.lookup("findCEO", ("Acme",)) is None
        cache.store("findCEO", ("Acme",), {"CEO": "Jane"}, cost=0.075, now=10.0)
        entry = cache.lookup("findCEO", ("Acme",))
        assert entry.reduced == {"CEO": "Jane"}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        # Savings are credited by the Task Manager with what the requesting
        # task avoided spending — a lookup alone credits nothing.
        assert cache.stats.dollars_saved == 0.0
        cache.credit_savings(0.075)
        assert cache.stats.dollars_saved == pytest.approx(0.075)

    def test_disabled_cache_never_hits(self):
        cache = TaskCache(enabled=False)
        cache.store("f", ("x",), True, cost=0.1, now=0.0)
        assert cache.lookup("f", ("x",)) is None
        assert len(cache) == 0

    def test_none_key_is_not_cacheable(self):
        cache = TaskCache()
        cache.store("f", None, True, cost=0.1, now=0.0)
        assert cache.lookup("f", None) is None
        assert cache.stats.entries == 0

    def test_keys_are_scoped_by_task_name(self):
        cache = TaskCache()
        cache.store("f", ("x",), True, cost=0.1, now=0.0)
        assert cache.lookup("g", ("x",)) is None
        assert ("f", ("x",)) in cache

    def test_invalidate(self):
        cache = TaskCache()
        cache.store("f", ("x",), 1, cost=0.1, now=0.0)
        cache.store("f", ("y",), 2, cost=0.1, now=0.0)
        cache.store("g", ("x",), 3, cost=0.1, now=0.0)
        assert cache.invalidate("f") == 2
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert cache.stats.entries == 0

    def test_hit_rate(self):
        cache = TaskCache()
        cache.lookup("f", ("x",))
        cache.store("f", ("x",), True, cost=0.1, now=0.0)
        cache.lookup("f", ("x",))
        assert cache.stats.hit_rate == pytest.approx(0.5)


def _filter_spec(extractor):
    return TaskSpec(
        name="isRed",
        task_type=TaskType.FILTER,
        text="Is %s red?",
        response=YesNoResponse(),
        parameters=(Parameter("name"),),
        feature_extractor=extractor,
    )


def _task(spec, features, label=None):
    return Task(
        kind=TaskKind.FILTER,
        spec=spec,
        payload={"features": features},
        callback=lambda result: None,
    )


class TestLearnedTaskModel:
    def separable_spec(self):
        return _filter_spec(lambda payload: payload.get("features"))

    def test_requires_feature_extractor_and_bool_returns(self):
        with pytest.raises(TaskError):
            LearnedTaskModel(_filter_spec(None))

    def test_untrained_model_abstains(self):
        model = LearnedTaskModel(self.separable_spec())
        assert model.predict(_task(self.separable_spec(), [1.0, 0.0])) is None
        assert not model.is_trusted

    def test_learns_a_separable_concept_and_becomes_trusted(self):
        spec = self.separable_spec()
        model = LearnedTaskModel(spec, min_observations=30, trust_accuracy=0.85,
                                 confidence_threshold=0.5, learning_rate=0.5)
        rng = random.Random(0)
        for _ in range(120):
            positive = rng.random() < 0.5
            features = [1.0, 0.0] if positive else [0.0, 1.0]
            model.observe(_task(spec, features), positive)
        assert model.is_trusted
        prediction = model.predict(_task(spec, [1.0, 0.0]))
        assert prediction is not None and prediction[0] is True
        prediction = model.predict(_task(spec, [0.0, 1.0]))
        assert prediction is not None and prediction[0] is False

    def test_non_boolean_labels_are_ignored(self):
        spec = self.separable_spec()
        model = LearnedTaskModel(spec)
        model.observe(_task(spec, [1.0]), "not a bool")
        assert model.stats.observations == 0

    def test_missing_features_are_ignored(self):
        spec = self.separable_spec()
        model = LearnedTaskModel(spec)
        model.observe(Task(kind=TaskKind.FILTER, spec=spec, payload={}, callback=lambda r: None), True)
        assert model.stats.observations == 0

    def test_savings_accounting(self):
        model = LearnedTaskModel(self.separable_spec())
        model.record_savings(0.075)
        model.record_savings(0.075)
        assert model.stats.dollars_saved == pytest.approx(0.15)


class TestTaskModelRegistry:
    def test_register_default_only_for_learnable_specs(self):
        registry = TaskModelRegistry()
        learnable = _filter_spec(lambda payload: [1.0])
        assert registry.register_default(learnable) is not None
        not_learnable = _filter_spec(None)
        assert registry.register_default(not_learnable) is None
        assert registry.model_for("isRed") is not None

    def test_disabled_registry_returns_nothing(self):
        registry = TaskModelRegistry(enabled=False)
        registry.register_default(_filter_spec(lambda payload: [1.0]))
        assert registry.model_for("isRed") is None

    def test_total_savings_sums_models(self):
        registry = TaskModelRegistry()
        model = registry.register_default(_filter_spec(lambda payload: [1.0]))
        model.record_savings(0.2)
        assert registry.total_savings() == pytest.approx(0.2)
