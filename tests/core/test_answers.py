"""Unit and property tests for answer lists and user-defined aggregates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.answers import (
    AnswerList,
    FieldwiseMajority,
    First,
    ListAll,
    MajorityVote,
    MeanRating,
    MedianRating,
    WeightedVote,
    get_aggregate,
    majority_confidence,
    register_aggregate,
)
from repro.errors import AggregateError


class TestAnswerList:
    def test_agreement(self):
        answers = AnswerList.of([True, True, False])
        assert answers.agreement() == pytest.approx(2 / 3)
        assert AnswerList.of([]).agreement() == 1.0

    def test_agreement_with_unhashable_answers(self):
        answers = AnswerList.of([{"CEO": "a"}, {"CEO": "a"}, {"CEO": "b"}])
        assert answers.agreement() == pytest.approx(2 / 3)

    def test_worker_ids_must_be_parallel(self):
        with pytest.raises(AggregateError):
            AnswerList.of([True, False], ["w1"])

    def test_indexing_and_iteration(self):
        answers = AnswerList.of([1, 2, 3])
        assert answers[0] == 1
        assert list(answers) == [1, 2, 3]
        assert len(answers) == 3

    def test_majority_confidence_helper(self):
        assert majority_confidence(AnswerList.of([True, True, True])) == 1.0


class TestMajorityVote:
    def test_simple_majority(self):
        assert MajorityVote()(AnswerList.of([True, False, True])) is True

    def test_tie_breaks_toward_earliest(self):
        assert MajorityVote()(AnswerList.of(["a", "b"])) == "a"
        assert MajorityVote()(AnswerList.of(["b", "a", "a", "b"])) == "b"

    def test_dict_answers(self):
        votes = [{"CEO": "Jane"}, {"CEO": "Jane"}, {"CEO": "John"}]
        assert MajorityVote()(AnswerList.of(votes)) == {"CEO": "Jane"}

    def test_empty_rejected(self):
        with pytest.raises(AggregateError):
            MajorityVote()(AnswerList.of([]))


class TestWeightedVote:
    def test_weights_override_raw_counts(self):
        answers = AnswerList.of([True, False, False], ["expert", "spam1", "spam2"])
        vote = WeightedVote({"expert": 5.0, "spam1": 0.1, "spam2": 0.1})
        assert vote(answers) is True

    def test_unknown_workers_use_default_weight(self):
        answers = AnswerList.of([True, False, False], ["a", "b", "c"])
        assert WeightedVote({})(answers) is False

    def test_without_worker_ids_falls_back_to_majority(self):
        assert WeightedVote({})(AnswerList.of([1, 1, 2])) == 1


class TestOtherAggregates:
    def test_first_and_list_all(self):
        answers = AnswerList.of([3, 1, 2])
        assert First()(answers) == 3
        assert ListAll()(answers) == [3, 1, 2]

    def test_mean_and_median(self):
        assert MeanRating()(AnswerList.of([1, 2, 6])) == pytest.approx(3.0)
        assert MedianRating()(AnswerList.of([1, 2, 6])) == 2
        assert MedianRating()(AnswerList.of([1, 2, 3, 10])) == pytest.approx(2.5)

    def test_mean_rejects_non_numeric(self):
        with pytest.raises(AggregateError):
            MeanRating()(AnswerList.of([1, "two"]))

    def test_fieldwise_majority(self):
        votes = [
            {"CEO": "Jane", "Phone": "111"},
            {"CEO": "Jane", "Phone": "222"},
            {"CEO": "John", "Phone": "222"},
        ]
        assert FieldwiseMajority()(AnswerList.of(votes)) == {"CEO": "Jane", "Phone": "222"}

    def test_fieldwise_requires_mappings(self):
        with pytest.raises(AggregateError):
            FieldwiseMajority()(AnswerList.of([1, 2]))


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert isinstance(get_aggregate("majorityvote"), MajorityVote)
        assert isinstance(get_aggregate("MeanRating"), MeanRating)

    def test_unknown_aggregate(self):
        with pytest.raises(AggregateError):
            get_aggregate("nope")

    def test_custom_registration(self):
        class Longest(MajorityVote):
            name = "Longest"

            def reduce(self, answers):
                return max(answers, key=len)

        register_aggregate("Longest", Longest)
        assert get_aggregate("longest")(AnswerList.of(["a", "abc", "ab"])) == "abc"


class TestAggregateProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=15))
    def test_majority_vote_matches_counting(self, votes):
        result = MajorityVote()(AnswerList.of(votes))
        trues, falses = votes.count(True), votes.count(False)
        if trues > falses:
            assert result is True
        elif falses > trues:
            assert result is False
        else:
            assert result is votes[0]

    @given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), min_size=1, max_size=20))
    def test_mean_and_median_bounded_by_extremes(self, values):
        answers = AnswerList.of(values)
        assert min(values) - 1e-9 <= MeanRating()(answers) <= max(values) + 1e-9
        assert min(values) <= MedianRating()(answers) <= max(values)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20))
    def test_majority_winner_is_modal(self, votes):
        winner = MajorityVote()(AnswerList.of(votes))
        assert votes.count(winner) == max(votes.count(v) for v in set(votes))
