"""Access-path planning: index scan versus table scan, from catalog statistics.

The planner enumerates a secondary-index access path whenever a table
pipeline's local predicate compares an indexed column against a literal.
Candidate selection orders by (dollars, HITs, tasks, local work), so for
crowd-free pipelines the access path is decided purely by estimated machine
work: selective predicates pick the index, unselective ones the scan.
"""

from repro.core.lang.sql_parser import parse_select
from repro.core.operators.scan import IndexScanOperator, ScanOperator
from repro.core.optimizer.cost_model import CostModel
from repro.core.optimizer.optimizer import QueryOptimizer
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.plan.planner import QueryPlanner
from repro.core.plan.registry import TaskRegistry
from repro.engine import QurkEngine
from repro.storage import Database, DataType, Schema, Table


def build_items_table(*, n_rows: int = 100, indexes: bool = True) -> Table:
    table = Table(
        "items",
        Schema.of(
            ("id", DataType.INTEGER),
            ("category", DataType.STRING),
            ("score", DataType.FLOAT),
            ("constant", DataType.STRING),
        ),
    )
    for i in range(n_rows):
        table.insert([i, f"cat{i % 20}", i / n_rows, "same"])
    if indexes:
        table.create_index("category")           # hash: equality only
        table.create_index("score", kind="sorted")  # sorted: equality + ranges
        table.create_index("constant")           # hash, 1 distinct value
    return table


def build_planner(table: Table) -> QueryPlanner:
    database = Database()
    database.catalog.register(table)
    optimizer = QueryOptimizer(StatisticsManager(), CostModel())
    return QueryPlanner(database, TaskRegistry(), optimizer)


def plan_operators(planner: QueryPlanner, sql: str):
    planned = planner.plan(parse_select(sql), query_id="q1")
    return planned, list(planned.root.walk())


class TestAccessPathChoice:
    def test_selective_equality_chooses_index_scan(self):
        planner = build_planner(build_items_table())
        planned, operators = plan_operators(
            planner, "SELECT id FROM items WHERE category = 'cat3'"
        )
        assert any(isinstance(op, IndexScanOperator) for op in operators)
        assert not any(type(op) is ScanOperator for op in operators)
        assert any(
            decision.startswith("access[items]: index(category =")
            for decision in planned.chosen.decisions
        )
        # Both access paths were enumerated and costed.
        labels = {d for c in planned.candidates for d in c.decisions}
        assert "access[items]: table-scan" in labels

    def test_full_scan_keeps_table_scan(self):
        planner = build_planner(build_items_table())
        planned, operators = plan_operators(planner, "SELECT id FROM items")
        assert any(type(op) is ScanOperator for op in operators)
        assert not any(isinstance(op, IndexScanOperator) for op in operators)
        assert len(planned.candidates) == 1  # no predicate, no alternative

    def test_unselective_equality_keeps_table_scan(self):
        """One distinct value: the index would gather every row, scan wins."""
        planner = build_planner(build_items_table())
        planned, operators = plan_operators(
            planner, "SELECT id FROM items WHERE constant = 'same'"
        )
        assert any(type(op) is ScanOperator for op in operators)
        assert not any(isinstance(op, IndexScanOperator) for op in operators)
        # The index path was still enumerated — it just lost on local work.
        labels = {d for c in planned.candidates for d in c.decisions}
        assert any(label.startswith("access[items]: index(constant") for label in labels)

    def test_range_predicate_uses_sorted_index(self):
        planner = build_planner(build_items_table())
        _planned, operators = plan_operators(
            planner, "SELECT id FROM items WHERE score < 0.05"
        )
        index_scans = [op for op in operators if isinstance(op, IndexScanOperator)]
        assert len(index_scans) == 1
        assert index_scans[0].op == "<"

    def test_range_on_hash_indexed_column_keeps_table_scan(self):
        """Hash indexes cannot answer ranges, so no alternative exists."""
        planner = build_planner(build_items_table())
        planned, operators = plan_operators(
            planner, "SELECT id FROM items WHERE category > 'cat3'"
        )
        assert not any(isinstance(op, IndexScanOperator) for op in operators)
        assert len(planned.candidates) == 1

    def test_unindexed_column_has_no_access_axis(self):
        planner = build_planner(build_items_table(indexes=False))
        planned, operators = plan_operators(
            planner, "SELECT id FROM items WHERE category = 'cat3'"
        )
        assert not any(isinstance(op, IndexScanOperator) for op in operators)
        assert len(planned.candidates) == 1
        assert planned.chosen.decisions == ()  # decision strings untouched

    def test_flipped_literal_orientation_is_normalized(self):
        planner = build_planner(build_items_table())
        _planned, operators = plan_operators(
            planner, "SELECT id FROM items WHERE 0.05 > score"
        )
        index_scans = [op for op in operators if isinstance(op, IndexScanOperator)]
        assert len(index_scans) == 1
        assert index_scans[0].op == "<"  # 0.05 > score  ==  score < 0.05


class TestExplainRendering:
    def test_explain_shows_index_scan_for_selective_equality(self):
        planner = build_planner(build_items_table())
        text = planner.explain(parse_select("SELECT id FROM items WHERE category = 'cat3'"))
        assert "index-scan(items.category = 'cat3')" in text
        assert "access[items]: table-scan" in text  # the losing candidate is listed

    def test_explain_shows_table_scan_for_full_scan(self):
        planner = build_planner(build_items_table())
        text = planner.explain(parse_select("SELECT id FROM items"))
        assert "scan(items)" in text
        assert "index-scan" not in text


class TestEndToEndEquivalence:
    def test_index_scan_results_match_table_scan(self):
        sql = "SELECT id, score FROM items WHERE category = 'cat7' ORDER BY score"
        results = {}
        for label, indexes in (("indexed", True), ("plain", False)):
            engine = QurkEngine(seed=11)
            engine.database.catalog.register(build_items_table(indexes=indexes))
            rows = engine.run(sql)
            results[label] = [tuple(row.values) for row in rows]
        assert results["indexed"] == results["plain"]
        assert len(results["indexed"]) == 5
