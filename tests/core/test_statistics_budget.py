"""Unit tests for the Statistics Manager and the budget ledger."""

import pytest

from repro.core.answers import AnswerList
from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.spec import TaskSpec, TaskType, YesNoResponse
from repro.core.tasks.task import ResultSource, Task, TaskKind, TaskResult
from repro.errors import BudgetExceededError


SPEC = TaskSpec(name="isRed", task_type=TaskType.FILTER, text="?", response=YesNoResponse())


def crowd_result(reduced=True, cost=0.045, latency=120.0, query_id="q1", answers=(True, True, False)):
    task = Task(kind=TaskKind.FILTER, spec=SPEC, payload={}, callback=lambda r: None, query_id=query_id)
    return TaskResult(
        task=task,
        answers=AnswerList.of(answers, [f"w{i}" for i in range(len(answers))]),
        reduced=reduced,
        source=ResultSource.CROWD,
        cost=cost,
        latency=latency,
    )


def cheap_result(source, reduced=True, query_id="q1", avoided_cost=0.075):
    # The Task Manager stamps cache/model results with the spend the
    # requester avoided (assignment_cost x redundancy); the statistics
    # manager just attributes whatever arrives.
    task = Task(kind=TaskKind.FILTER, spec=SPEC, payload={}, callback=lambda r: None, query_id=query_id)
    return TaskResult(
        task=task,
        answers=AnswerList.of(()),
        reduced=reduced,
        source=source,
        avoided_cost=avoided_cost,
    )


class TestStatisticsManager:
    def test_crowd_results_update_spec_and_query_stats(self):
        stats = StatisticsManager()
        stats.record_result(crowd_result(reduced=True))
        stats.record_result(crowd_result(reduced=False, cost=0.03, latency=60.0))
        spec = stats.spec("isRed")
        assert spec.crowd_tasks == 2
        assert spec.mean_cost == pytest.approx(0.0375)
        assert spec.mean_latency == pytest.approx(90.0)
        assert spec.observed_selectivity == pytest.approx(0.5)
        query = stats.query("q1")
        assert query.spent == pytest.approx(0.075)
        assert query.tasks_completed == 2

    def test_cache_and_model_results_tracked_separately(self):
        stats = StatisticsManager()
        stats.record_result(crowd_result())
        stats.record_result(cheap_result(ResultSource.CACHE))
        stats.record_result(cheap_result(ResultSource.MODEL))
        spec = stats.spec("isRed")
        assert spec.cache_hits == 1
        assert spec.model_answers == 1
        query = stats.query("q1")
        assert query.cache_hits == 1 and query.model_answers == 1
        assert query.dollars_saved_cache > 0
        assert query.dollars_saved_model > 0

    def test_selectivity_estimate_blends_prior_with_observations(self):
        stats = StatisticsManager()
        # No data: pure prior.
        assert stats.estimate_selectivity("isRed") == pytest.approx(0.5)
        for _ in range(20):
            stats.record_result(crowd_result(reduced=True))
        estimate = stats.estimate_selectivity("isRed")
        assert 0.8 < estimate <= 1.0

    def test_latency_estimate_defaults_to_prior(self):
        stats = StatisticsManager()
        assert stats.estimate_latency("isRed") == StatisticsManager.DEFAULT_LATENCY_PRIOR
        stats.record_result(crowd_result(latency=200.0))
        assert stats.estimate_latency("isRed") == pytest.approx(200.0)

    def test_cost_per_task_estimate_fallback(self):
        stats = StatisticsManager()
        assert stats.estimate_cost_per_task("isRed", fallback=0.1) == 0.1
        stats.record_result(crowd_result(cost=0.05))
        assert stats.estimate_cost_per_task("isRed", fallback=0.1) == pytest.approx(0.05)

    def test_worker_vote_tracking_and_weights(self):
        stats = StatisticsManager()
        stats.record_vote("good", True)
        stats.record_vote("good", True)
        stats.record_vote("bad", False)
        weights = stats.worker_weights()
        assert weights["good"] == 1.0
        assert weights["bad"] == 0.0

    def test_result_emission_and_hit_posting_counters(self):
        stats = StatisticsManager()
        stats.record_hit_posted("isRed", "q1")
        stats.record_task_submitted("q1")
        stats.record_result_emitted("q1", 3)
        query = stats.query("q1")
        assert query.hits_posted == 1
        assert query.tasks_submitted == 1
        assert query.results_emitted == 3

    def test_query_stats_budget_accessors(self):
        stats = StatisticsManager()
        query = stats.query("q1")
        query.budget = 1.0
        query.spent = 0.25
        assert query.remaining_budget == pytest.approx(0.75)
        query.started_at = 10.0
        query.finished_at = 110.0
        assert query.elapsed == pytest.approx(100.0)


class TestBudgetLedger:
    def test_unbudgeted_queries_always_afford(self):
        ledger = BudgetLedger()
        ledger.authorize("q1", 1_000_000.0)
        assert ledger.remaining("q1") is None

    def test_budget_enforced(self):
        ledger = BudgetLedger()
        ledger.register("q1", 0.10)
        ledger.authorize("q1", 0.06)
        assert ledger.remaining("q1") == pytest.approx(0.04)
        assert ledger.would_exceed("q1", 0.05)
        with pytest.raises(BudgetExceededError) as excinfo:
            ledger.authorize("q1", 0.05, description="a join HIT")
        assert excinfo.value.spent == pytest.approx(0.06)
        assert ledger.committed("q1") == pytest.approx(0.06)

    def test_exact_budget_fit_is_allowed(self):
        ledger = BudgetLedger()
        ledger.register("q1", 0.10)
        ledger.authorize("q1", 0.10)
        assert ledger.remaining("q1") == pytest.approx(0.0)
