"""Unit tests for the HIT compiler (task batches → HIT content / HTML / extraction)."""

import pytest

from repro.core.tasks.hit_compiler import HITCompiler
from repro.core.tasks.spec import (
    ComparisonResponse,
    FormResponse,
    JoinColumnsResponse,
    Parameter,
    RatingResponse,
    ReturnField,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.core.tasks.task import Task, TaskKind
from repro.crowd.hit import Assignment, HITInterface
from repro.errors import TaskCompilationError


def noop(result):
    return None


FINDCEO = TaskSpec(
    name="findCEO",
    task_type=TaskType.QUESTION,
    text="Find the CEO for %s",
    response=FormResponse((("CEO", "String"), ("Phone", "String"))),
    parameters=(Parameter("companyName"),),
    returns=(ReturnField("CEO"), ReturnField("Phone")),
)

ISRED = TaskSpec(name="isRed", task_type=TaskType.FILTER, text="Is %s red?", response=YesNoResponse())

SAMEPERSON = TaskSpec(
    name="samePerson",
    task_type=TaskType.JOIN_PREDICATE,
    text="Match the people",
    response=JoinColumnsResponse("Celebrity", "Spotted Star", left_per_hit=2, right_per_hit=2),
)

COMPARE = TaskSpec(name="bigger", task_type=TaskType.RANK, text="Which is bigger?", response=ComparisonResponse())
RATE = TaskSpec(name="rate", task_type=TaskType.RATING, text="Rate it", response=RatingResponse((1, 5)))


class TestItemisedCompilation:
    def test_question_form_batch(self):
        compiler = HITCompiler()
        tasks = [
            Task(kind=TaskKind.GENERATE, spec=FINDCEO, payload={"args": (name,), "companyName": name}, callback=noop)
            for name in ("Acme", "Globex")
        ]
        compiled = compiler.compile(tasks)
        content = compiled.content
        assert content.interface is HITInterface.QUESTION_FORM
        assert len(content.items) == 2
        assert content.items[0].prompt == "Find the CEO for Acme"
        assert [f.name for f in content.fields] == ["CEO", "Phone"]
        assert compiled.item_to_task["item0"] == tasks[0].task_id
        # The oracle dispatch tag is attached to every item.
        assert content.items[0].payload["_task"] == "findCEO"

    def test_filter_batch_prompts_are_substituted_per_item(self):
        compiler = HITCompiler()
        tasks = [
            Task(kind=TaskKind.FILTER, spec=ISRED, payload={"args": (n,), "row": {"name": n}}, callback=noop)
            for n in ("mug", "lamp", "chair")
        ]
        compiled = compiler.compile(tasks)
        assert compiled.content.interface is HITInterface.BINARY_CHOICE
        assert [item.prompt for item in compiled.content.items] == [
            "Is mug red?", "Is lamp red?", "Is chair red?",
        ]

    def test_mixed_specs_rejected(self):
        compiler = HITCompiler()
        tasks = [
            Task(kind=TaskKind.FILTER, spec=ISRED, payload={"args": ("a",)}, callback=noop),
            Task(kind=TaskKind.GENERATE, spec=FINDCEO, payload={"args": ("b",), "companyName": "b"}, callback=noop),
        ]
        with pytest.raises(TaskCompilationError):
            compiler.compile(tasks)

    def test_empty_batch_rejected(self):
        with pytest.raises(TaskCompilationError):
            HITCompiler().compile([])

    def test_extract_answers_maps_items_back_to_tasks(self):
        compiler = HITCompiler()
        tasks = [
            Task(kind=TaskKind.FILTER, spec=ISRED, payload={"args": (n,)}, callback=noop)
            for n in ("a", "b")
        ]
        compiled = compiler.compile(tasks)
        assignment = Assignment("a1", "h1", "w1", accepted_at=0.0)
        assignment.submit({"item0": True, "item1": False}, at=1.0)
        extracted = compiled.extract_answers(assignment)
        assert extracted[tasks[0].task_id] is True
        assert extracted[tasks[1].task_id] is False

    def test_extract_tolerates_skipped_items(self):
        compiler = HITCompiler()
        tasks = [
            Task(kind=TaskKind.FILTER, spec=ISRED, payload={"args": (n,)}, callback=noop)
            for n in ("a", "b")
        ]
        compiled = compiler.compile(tasks)
        assignment = Assignment("a1", "h1", "w1", accepted_at=0.0)
        assignment.submit({"item0": True}, at=1.0)
        extracted = compiled.extract_answers(assignment)
        assert tasks[1].task_id not in extracted


class TestJoinBlockCompilation:
    def block_task(self):
        return Task(
            kind=TaskKind.JOIN_BLOCK,
            spec=SAMEPERSON,
            payload={
                "left_items": [{"label": "celeb-a"}, {"label": "celeb-b"}],
                "right_items": [{"label": "spot-0"}, {"label": "spot-1"}],
            },
            callback=noop,
        )

    def test_block_compiles_to_two_columns(self):
        compiled = HITCompiler().compile([self.block_task()])
        content = compiled.content
        assert content.interface is HITInterface.JOIN_COLUMNS
        assert len(content.left_items) == 2 and len(content.right_items) == 2
        assert content.left_label == "Celebrity"
        assert compiled.block_positions["L1"] == ("left", 1)

    def test_block_batches_of_more_than_one_rejected(self):
        with pytest.raises(TaskCompilationError):
            HITCompiler().compile([self.block_task(), self.block_task()])

    def test_extract_matches_returns_index_pairs(self):
        compiled = HITCompiler().compile([self.block_task()])
        assignment = Assignment("a1", "h1", "w1", accepted_at=0.0)
        assignment.submit({"matches": [("L0", "R1"), ("L1", "R0"), ("L9", "R0")]}, at=1.0)
        extracted = compiled.extract_answers(assignment)
        (pairs,) = extracted.values()
        assert pairs == [(0, 1), (1, 0)]  # unknown item ids dropped, sorted


class TestHTMLRendering:
    def test_every_interface_renders_a_form(self):
        compiler = HITCompiler()
        cases = [
            [Task(kind=TaskKind.GENERATE, spec=FINDCEO, payload={"args": ("Acme",), "companyName": "Acme"}, callback=noop)],
            [Task(kind=TaskKind.FILTER, spec=ISRED, payload={"args": ("mug",)}, callback=noop)],
            [Task(kind=TaskKind.COMPARE, spec=COMPARE, payload={"left": {}, "right": {}}, callback=noop)],
            [Task(kind=TaskKind.RATE, spec=RATE, payload={"row": {}}, callback=noop)],
            [Task(kind=TaskKind.JOIN_BLOCK, spec=SAMEPERSON,
                  payload={"left_items": [{"label": "x"}], "right_items": [{"label": "y"}]}, callback=noop)],
        ]
        for tasks in cases:
            compiled = compiler.compile(tasks)
            assert compiled.html.startswith("<form")
            assert "Submit HIT" in compiled.html

    def test_html_escapes_user_content(self):
        task = Task(
            kind=TaskKind.FILTER,
            spec=ISRED,
            payload={"args": ("<script>alert(1)</script>",)},
            callback=noop,
        )
        compiled = HITCompiler().compile([task])
        assert "<script>" not in compiled.html
        assert "&lt;script&gt;" in compiled.html
