"""Tests for mid-query adaptive re-optimization (AdaptiveReplanner)."""

import pytest

from repro.core.exec.context import QueryConfig
from repro.core.operators import CrowdSortOperator
from repro.core.operators.crowd_sort import SortStrategy
from repro.engine import QurkEngine
from repro.errors import ExecutionError
from repro.workloads.products import ProductsWorkload

MISESTIMATED_SQL = (
    "SELECT name FROM products WHERE isTargetColor(name) ORDER BY biggerItem(name)"
)


def build_engine(*, adaptive: bool, n_products: int = 10, misestimate: bool = True):
    workload = ProductsWorkload(n_products=n_products, target_fraction=0.9, seed=77)
    engine = QurkEngine(
        seed=5,
        enable_cache=False,
        enable_task_model=False,
        default_query_config=QueryConfig(adaptive=adaptive),
    )
    workload.install(engine.database)
    oracle = workload.oracle()
    for task in ("isTargetColor", "biggerItem", "rateSize"):
        engine.register_oracle(task, oracle)
    name_payload = lambda row: {"name": row["name"]}  # noqa: E731 - tiny adapter
    engine.define_task(workload.color_filter_spec(assignments=3), learnable=False)
    engine.define_task(workload.size_compare_spec(assignments=3), payload=name_payload, learnable=False)
    engine.define_task(workload.size_rating_spec(assignments=3), payload=name_payload, learnable=False)
    if misestimate:
        # Deliberately poison the filter's selectivity estimate: "previous
        # queries matched almost nothing", while 90% of products truly match.
        stats = engine.statistics.spec("isTargetColor")
        stats.boolean_total = 36
        stats.boolean_true = 0
    return engine, workload


class TestMidQueryReplan:
    def test_misestimated_sort_is_swapped_to_rating(self):
        engine, _workload = build_engine(adaptive=True)
        handle = engine.query(MISESTIMATED_SQL)
        rows = handle.wait()
        assert len(rows) >= 6  # ~90% of 10 products pass the filter
        swaps = [c for c in handle.plan_history() if c.kind == "sort-strategy"]
        assert len(swaps) == 1
        assert swaps[0].before == "comparison" and swaps[0].after == "rating"
        assert swaps[0].estimated_savings > 0
        # The running plan now contains the rating sort.
        sorts = [
            op for op in handle.executor.operators() if isinstance(op, CrowdSortOperator)
        ]
        assert sorts[0].strategy is SortStrategy.RATING
        # The scheduler surfaced the swap as a lifecycle event.
        events = engine.scheduler.events_for(handle.query_id)
        assert any(event.event == "replanned" for event in events)

    def test_adaptive_run_is_strictly_cheaper_than_static(self):
        static_engine, _ = build_engine(adaptive=False)
        static = static_engine.query(MISESTIMATED_SQL)
        static.wait()
        adaptive_engine, _ = build_engine(adaptive=True)
        adaptive = adaptive_engine.query(MISESTIMATED_SQL)
        adaptive.wait()
        assert adaptive.stats.hits_posted < static.stats.hits_posted
        assert adaptive.total_cost < static.total_cost

    def test_accurate_estimates_are_left_alone(self):
        engine, _workload = build_engine(adaptive=True, misestimate=False)
        # No crowd filter: the sort input is the exact scan cardinality.
        handle = engine.query("SELECT name FROM products ORDER BY biggerItem(name)")
        handle.wait()
        swaps = [c for c in handle.plan_history() if c.kind == "sort-strategy"]
        assert swaps == []

    def test_static_queries_are_never_replanned(self):
        engine, _workload = build_engine(adaptive=False)
        handle = engine.query(MISESTIMATED_SQL)
        handle.wait()
        assert [c for c in handle.plan_history() if c.kind != "plan"] == []

    def test_plan_history_starts_with_initial_choice(self):
        engine, _workload = build_engine(adaptive=True)
        handle = engine.query(MISESTIMATED_SQL)
        history = handle.plan_history()
        assert history and history[0].kind == "plan"

    def test_redundancy_shift_is_recorded_mid_query(self):
        engine, _workload = build_engine(adaptive=True)
        handle = engine.query(MISESTIMATED_SQL)
        # Drive until the first barrier (the scan completing) has seeded the
        # replanner's redundancy baselines for the pending crowd operators.
        while not any(op.is_done() for op in handle.executor.operators()):
            engine.scheduler.step()
        # Observed agreement jumps: one worker now suffices for biggerItem.
        stats = engine.statistics.spec("biggerItem")
        stats.crowd_tasks = 50
        stats.total_agreement = 50 * 0.99
        handle.wait()
        shifts = [c for c in handle.plan_history() if c.kind == "redundancy"]
        assert any(c.operator == "biggerItem" and c.after == "1" for c in shifts)


class TestReplaceOperator:
    def test_replace_pending_sort_preserves_buffered_rows(self):
        engine, workload = build_engine(adaptive=False, misestimate=False)
        handle = engine.query("SELECT name FROM products ORDER BY biggerItem(name)")
        executor = handle.executor
        # Step locally until the sort has buffered the scan output but has
        # not submitted any comparisons (inputs not yet signalled finished).
        executor.open()
        executor.step_local(flush=False, raise_on_budget=False)
        old = next(op for op in executor.operators() if isinstance(op, CrowdSortOperator))
        assert old.metrics.tasks_created == 0
        buffered = len(old.consumed_input()) + old.queued_rows()
        assert buffered > 0
        replacement = CrowdSortOperator(
            old.spec,
            old.output_schema,
            strategy=SortStrategy.RATING,
            descending=old.descending,
            items_per_hit=old.items_per_hit,
            payload=old.payload,
        )
        executor.replace_operator(old, replacement)
        assert replacement.parent is old.parent or replacement.parent is not None
        rows = handle.wait()
        assert len(rows) == 10  # nothing lost in the swap
        assert replacement.ratings_asked == 10
        assert replacement.comparisons_asked == 0

    def test_replace_started_operator_is_refused(self):
        engine, _workload = build_engine(adaptive=False, misestimate=False)
        handle = engine.query("SELECT name FROM products ORDER BY rateSize(name)")
        handle.wait()
        executor = handle.executor
        old = next(op for op in executor.operators() if isinstance(op, CrowdSortOperator))
        replacement = CrowdSortOperator(old.spec, old.output_schema)
        with pytest.raises(ExecutionError, match="already started"):
            executor.replace_operator(old, replacement)


class TestExplainOnEngine:
    def test_engine_explain_is_side_effect_free(self):
        engine, _workload = build_engine(adaptive=True)
        tables_before = len(engine.database.catalog)
        text = engine.explain(MISESTIMATED_SQL)
        assert "physical candidates" in text and "(chosen)" in text
        assert len(engine.database.catalog) == tables_before
        assert engine.total_crowd_cost == 0.0
