"""Unit tests for worker behaviour models."""

import random

import pytest

from repro.crowd import (
    CallbackOracle,
    DiligentWorker,
    FormField,
    HITContent,
    HITInterface,
    HITItem,
    LazyWorker,
    NoisyWorker,
    SpammerWorker,
    WorkerModel,
)
from repro.errors import WorkerError


def predicate_content(n=20):
    return HITContent(
        interface=HITInterface.BINARY_CHOICE,
        title="Filter",
        instructions="Is this product red?",
        items=tuple(HITItem(f"i{k}", "red?", {"is_red": k % 2 == 0}) for k in range(n)),
    )


def form_content(n=5):
    return HITContent(
        interface=HITInterface.QUESTION_FORM,
        title="CEO",
        instructions="Find the CEO",
        items=tuple(HITItem(f"c{k}", f"Company {k}", {"ceo": f"CEO-{k}"}) for k in range(n)),
        fields=(FormField("CEO"),),
    )


def comparison_content(n=10):
    return HITContent(
        interface=HITInterface.COMPARISON,
        title="Which is bigger",
        instructions="Pick the larger animal",
        items=tuple(
            HITItem(f"p{k}", "compare", {"truth": "left" if k % 3 else "right"}) for k in range(n)
        ),
    )


def rating_content(n=8):
    return HITContent(
        interface=HITInterface.RATING,
        title="Rate",
        instructions="Rate the size 1-7",
        items=tuple(HITItem(f"r{k}", "rate", {"size": 1 + (k % 7)}) for k in range(n)),
        rating_scale=(1, 7),
    )


def join_columns_content(n=4):
    items = [HITItem(f"L{k}", "c", {"identity": k}, group="left") for k in range(n)] + [
        HITItem(f"R{k}", "s", {"identity": k}, group="right") for k in range(n)
    ]
    return HITContent(
        interface=HITInterface.JOIN_COLUMNS,
        title="Match",
        instructions="match",
        items=tuple(items),
    )


ORACLE = CallbackOracle(
    form=lambda item, field: item.payload["ceo"],
    predicate=lambda item: item.payload["is_red"],
    pair=lambda left, right: left.payload["identity"] == right.payload["identity"],
    comparison=lambda item: item.payload["truth"],
    rating=lambda item: item.payload["size"],
)


class TestBaseBehaviour:
    def test_perfect_worker_answers_predicates_exactly(self):
        worker = WorkerModel("w", accuracy=1.0)
        answers = worker.answer(predicate_content(), ORACLE, random.Random(0))
        assert all(answers[f"i{k}"] == (k % 2 == 0) for k in range(20))

    def test_zero_accuracy_worker_always_wrong_on_predicates(self):
        worker = WorkerModel("w", accuracy=0.0)
        answers = worker.answer(predicate_content(), ORACLE, random.Random(0))
        assert all(answers[f"i{k}"] != (k % 2 == 0) for k in range(20))

    def test_form_answers_use_oracle(self):
        worker = WorkerModel("w", accuracy=1.0)
        answers = worker.answer(form_content(), ORACLE, random.Random(0))
        assert answers["c3"]["CEO"] == "CEO-3"

    def test_comparison_answers(self):
        worker = WorkerModel("w", accuracy=1.0)
        answers = worker.answer(comparison_content(), ORACLE, random.Random(0))
        assert answers["p0"] == "right" and answers["p1"] == "left"

    def test_rating_answers_clamped_to_scale(self):
        worker = WorkerModel("w", accuracy=0.2)
        answers = worker.answer(rating_content(), ORACLE, random.Random(1))
        assert all(1 <= v <= 7 for v in answers.values())

    def test_perfect_rating_is_exact(self):
        worker = WorkerModel("w", accuracy=1.0)
        answers = worker.answer(rating_content(), ORACLE, random.Random(1))
        assert answers["r0"] == pytest.approx(1.0)

    def test_join_columns_perfect_worker_finds_all_matches(self):
        worker = WorkerModel("w", accuracy=1.0)
        answers = worker.answer(join_columns_content(4), ORACLE, random.Random(0))
        assert sorted(answers["matches"]) == [(f"L{k}", f"R{k}") for k in range(4)]

    def test_accuracy_bounds_validated(self):
        with pytest.raises(WorkerError):
            WorkerModel("w", accuracy=1.5)
        with pytest.raises(WorkerError):
            WorkerModel("w", seconds_per_unit=0)

    def test_work_duration_scales_with_items(self):
        worker = WorkerModel("w")
        rng = random.Random(0)
        small = worker.work_duration(predicate_content(2), random.Random(1))
        large = worker.work_duration(predicate_content(50), random.Random(1))
        assert large > small
        assert worker.work_duration(predicate_content(1), rng) >= 1.0


class TestArchetypes:
    def test_diligent_more_accurate_than_noisy(self):
        content = predicate_content(200)
        truth = {f"i{k}": (k % 2 == 0) for k in range(200)}

        def accuracy_of(worker, seed):
            answers = worker.answer(content, ORACLE, random.Random(seed))
            return sum(answers[k] == truth[k] for k in truth) / len(truth)

        diligent = accuracy_of(DiligentWorker("d"), 3)
        noisy = accuracy_of(NoisyWorker("n", accuracy=0.7), 3)
        assert diligent > noisy

    def test_spammer_ignores_oracle_and_is_fast(self):
        spammer = SpammerWorker("s")
        content = form_content(3)
        answers = spammer.answer(content, ORACLE, random.Random(0))
        assert all(fields["CEO"] == "n/a" for fields in answers.values())
        diligent_time = DiligentWorker("d").work_duration(content, random.Random(5))
        spammer_time = spammer.work_duration(content, random.Random(5))
        assert spammer_time < diligent_time

    def test_spammer_answers_every_interface(self):
        spammer = SpammerWorker("s")
        for content in (
            predicate_content(5),
            comparison_content(5),
            rating_content(5),
            join_columns_content(3),
        ):
            answers = spammer.answer(content, ORACLE, random.Random(0))
            assert answers

    def test_lazy_worker_accuracy_degrades_with_position(self):
        lazy = LazyWorker("l", accuracy=0.95, fatigue=0.05)
        assert lazy._positional_accuracy(0) > lazy._positional_accuracy(10)
        assert lazy._positional_accuracy(100) == pytest.approx(0.5)

    def test_lazy_worker_worse_on_long_hits(self):
        content_short = predicate_content(4)
        content_long = predicate_content(60)
        truth_short = {f"i{k}": (k % 2 == 0) for k in range(4)}
        truth_long = {f"i{k}": (k % 2 == 0) for k in range(60)}
        lazy = LazyWorker("l", accuracy=0.98, fatigue=0.02)

        def accuracy(content, truth):
            total = correct = 0
            for seed in range(30):
                answers = lazy.answer(content, ORACLE, random.Random(seed))
                for key, value in truth.items():
                    total += 1
                    correct += answers[key] == value
            return correct / total

        assert accuracy(content_short, truth_short) > accuracy(content_long, truth_long)

    def test_lazy_worker_covers_all_interfaces(self):
        lazy = LazyWorker("l")
        for content in (
            form_content(3),
            comparison_content(5),
            rating_content(5),
            join_columns_content(3),
        ):
            assert lazy.answer(content, ORACLE, random.Random(0))


class TestOracleErrors:
    def test_missing_oracle_capability_raises(self):
        worker = WorkerModel("w", accuracy=1.0)
        empty_oracle = CallbackOracle()
        with pytest.raises(WorkerError):
            worker.answer(predicate_content(1), empty_oracle, random.Random(0))

    def test_comparison_oracle_must_return_side(self):
        bad = CallbackOracle(comparison=lambda item: "up")
        worker = WorkerModel("w", accuracy=1.0)
        with pytest.raises(WorkerError):
            worker.answer(comparison_content(1), bad, random.Random(0))
