"""Unit tests for the worker pool / marketplace model."""

import pytest

from repro.crowd import (
    HIT,
    HITContent,
    HITInterface,
    HITItem,
    PopulationMix,
    SpammerWorker,
    WorkerPool,
)
from repro.errors import WorkerError


def simple_hit(reward=0.01, items=1, assignments=1):
    content = HITContent(
        interface=HITInterface.BINARY_CHOICE,
        title="t",
        instructions="i",
        items=tuple(HITItem(f"i{k}", "p") for k in range(items)),
    )
    return HIT("h1", content, reward=reward, max_assignments=assignments, created_at=0.0)


class TestPopulationMix:
    def test_normalisation(self):
        mix = PopulationMix(diligent=2, noisy=1, lazy=1, spammer=0)
        assert sum(mix.normalised()) == pytest.approx(1.0)
        assert mix.normalised()[0] == pytest.approx(0.5)

    def test_negative_fraction_rejected(self):
        with pytest.raises(WorkerError):
            PopulationMix(diligent=-1)

    def test_all_zero_rejected(self):
        with pytest.raises(WorkerError):
            PopulationMix(diligent=0, noisy=0, lazy=0, spammer=0)


class TestWorkerPool:
    def test_population_size_and_determinism(self):
        pool_a = WorkerPool(size=50, seed=3)
        pool_b = WorkerPool(size=50, seed=3)
        assert len(pool_a.workers) == 50
        assert [type(w).__name__ for w in pool_a.workers] == [
            type(w).__name__ for w in pool_b.workers
        ]

    def test_different_seeds_differ(self):
        pool_a = WorkerPool(size=200, seed=1)
        pool_b = WorkerPool(size=200, seed=2)
        assert [type(w).__name__ for w in pool_a.workers] != [
            type(w).__name__ for w in pool_b.workers
        ]

    def test_spammer_only_population(self):
        pool = WorkerPool(size=20, mix=PopulationMix(diligent=0, noisy=0, lazy=0, spammer=1))
        assert all(isinstance(w, SpammerWorker) for w in pool.workers)
        assert pool.expected_accuracy() == pytest.approx(0.5)

    def test_expected_accuracy_of_default_mix_is_high_but_imperfect(self):
        pool = WorkerPool(size=500, seed=11)
        assert 0.8 < pool.expected_accuracy() < 0.99

    def test_worker_lookup(self):
        pool = WorkerPool(size=5, seed=0)
        worker = pool.workers[2]
        assert pool.worker(worker.worker_id) is worker
        with pytest.raises(WorkerError):
            pool.worker("missing")

    def test_select_workers_without_replacement(self):
        pool = WorkerPool(size=30, seed=0)
        chosen = pool.select_workers(simple_hit(assignments=10), 10)
        ids = [w.worker_id for w in chosen]
        assert len(set(ids)) == 10

    def test_select_more_workers_than_pool_falls_back_to_replacement(self):
        pool = WorkerPool(size=3, seed=0)
        chosen = pool.select_workers(simple_hit(), 10)
        assert len(chosen) == 10

    def test_minimum_pool_size_enforced(self):
        with pytest.raises(WorkerError):
            WorkerPool(size=0)

    def test_higher_reward_shortens_mean_pickup(self):
        pool = WorkerPool(size=50, seed=9)
        cheap = [pool.pickup_delay(simple_hit(reward=0.01)) for _ in range(300)]
        pool2 = WorkerPool(size=50, seed=9)
        generous = [pool2.pickup_delay(simple_hit(reward=0.25)) for _ in range(300)]
        assert sum(generous) / len(generous) < sum(cheap) / len(cheap)

    def test_bigger_hits_take_longer_to_get_picked_up(self):
        pool = WorkerPool(size=50, seed=9)
        small = [pool.pickup_delay(simple_hit(items=1)) for _ in range(300)]
        pool2 = WorkerPool(size=50, seed=9)
        large = [pool2.pickup_delay(simple_hit(items=100)) for _ in range(300)]
        assert sum(large) > sum(small)

    def test_assignment_rng_is_deterministic_per_id(self):
        pool = WorkerPool(seed=5)
        a = pool.assignment_rng("A1").random()
        b = WorkerPool(seed=5).assignment_rng("A1").random()
        c = pool.assignment_rng("A2").random()
        assert a == b
        assert a != c

    def test_assignment_ids_unique(self):
        pool = WorkerPool()
        ids = {pool.next_assignment_id() for _ in range(100)}
        assert len(ids) == 100
