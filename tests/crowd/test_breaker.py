"""Unit tests for the marketplace circuit breaker state machine.

Everything here drives a bare :class:`MarketplaceCircuitBreaker` against a
:class:`SimulationClock` directly — no engine, no marketplace — so each
transition of the closed → open → half-open machine is pinned down in
isolation.  The integrated behaviour (breaker + faults + Task Manager) is
covered by the ``breaker-recovery`` chaos scenario and the e19 benchmark.
"""

import pytest

from repro.crowd.breaker import BreakerConfig, BreakerStats, MarketplaceCircuitBreaker
from repro.crowd.clock import SimulationClock
from repro.errors import CrowdError

pytestmark = pytest.mark.overload


def make_breaker(clock=None, **overrides) -> MarketplaceCircuitBreaker:
    defaults = dict(failure_threshold=3, cooldown=100.0, backoff=2.0, max_cooldown=400.0)
    defaults.update(overrides)
    return MarketplaceCircuitBreaker(
        BreakerConfig(**defaults), clock=clock if clock is not None else SimulationClock()
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown": 0.0},
            {"cooldown": -5.0},
            {"backoff": 0.5},
            {"cooldown": 100.0, "max_cooldown": 50.0},
            {"half_open_probes": 0},
            {"jitter": -0.1},
            {"jitter": 1.0},
        ],
        ids=lambda kwargs: next(iter(kwargs)),
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(CrowdError):
            BreakerConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = BreakerConfig()
        assert config.failure_threshold == 5
        assert config.jitter == 0.0


class TestStateMachine:
    def test_starts_closed_and_allows_posting(self):
        breaker = make_breaker()
        assert breaker.state == breaker.CLOSED
        assert breaker.allow_posting()
        assert breaker.retry_at is None

    def test_trips_open_after_consecutive_failures(self):
        breaker = make_breaker()
        for _ in range(3):
            assert breaker.state == breaker.CLOSED
            breaker.record_failure()
        assert breaker.state == breaker.OPEN
        assert breaker.stats.trips == 1
        assert not breaker.allow_posting()
        assert breaker.retry_at == breaker.clock.now + 100.0

    def test_success_resets_the_consecutive_count(self):
        breaker = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == breaker.CLOSED
        breaker.record_failure()
        assert breaker.state == breaker.OPEN

    def test_failures_while_open_carry_no_new_information(self):
        breaker = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        retry_at = breaker.retry_at
        # Stragglers: HITs posted before the trip keep expiring while open.
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == breaker.OPEN
        assert breaker.stats.trips == 1
        assert breaker.retry_at == retry_at
        assert breaker.stats.failures == 5

    def test_scheduled_reopen_turns_half_open_on_the_clock(self):
        clock = SimulationClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert clock.pending_events == 1  # the breaker:reopen event
        clock.run_until_idle()
        assert clock.now == 100.0
        assert breaker.state == breaker.HALF_OPEN
        assert breaker.stats.reopens == 1

    def test_half_open_admits_only_the_configured_probes(self):
        clock = SimulationClock()
        breaker = make_breaker(clock, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.run_until_idle()
        assert breaker.allow_posting()
        breaker.record_post()
        assert breaker.stats.probes_posted == 1
        assert not breaker.allow_posting()  # one probe in flight, cap reached

    def test_probe_success_closes_and_resets_the_cooldown(self):
        clock = SimulationClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.run_until_idle()
        breaker.record_post()
        breaker.record_success()
        assert breaker.state == breaker.CLOSED
        assert breaker.stats.closes == 1
        assert breaker.retry_at is None
        # The cooldown reset: a fresh trip waits the base 100s again.
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_at == clock.now + 100.0

    def test_probe_failure_retrips_with_exponential_backoff(self):
        clock = SimulationClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.run_until_idle()
        breaker.record_post()
        breaker.record_failure()  # the probe died
        assert breaker.state == breaker.OPEN
        assert breaker.stats.trips == 2
        assert breaker.retry_at == clock.now + 200.0  # 100 * backoff 2.0

    def test_backoff_is_capped_at_max_cooldown(self):
        clock = SimulationClock()
        breaker = make_breaker(clock)  # 100 -> 200 -> 400 (cap) -> 400 ...
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):  # four failed probes in a row
            clock.run_until_idle()
            breaker.record_post()
            breaker.record_failure()
        assert breaker.retry_at == clock.now + 400.0

    def test_lazy_reopen_when_polled_past_the_retry_time(self):
        clock = SimulationClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        # The clock jumps past the retry point without firing the scheduled
        # event — exactly what WAL recovery does: clock events are not
        # journalled, so the reopen event is gone and ``restore_time`` lands
        # past the retry point.  The first posting poll must lazily reopen
        # rather than refuse forever.
        clock._events[0].cancel()  # the lost breaker:reopen event
        clock.restore_time(150.0)
        assert breaker.allow_posting()
        assert breaker.state == breaker.HALF_OPEN

    def test_trip_without_a_clock_is_a_hard_error(self):
        breaker = MarketplaceCircuitBreaker(BreakerConfig(failure_threshold=1), clock=None)
        with pytest.raises(CrowdError):
            breaker.record_failure()


class TestJitterDeterminism:
    def test_same_seed_same_jittered_cooldowns(self):
        def retry_times(seed: int) -> list[float]:
            clock = SimulationClock()
            breaker = make_breaker(clock, jitter=0.5, seed=seed)
            times = []
            for _ in range(3):
                breaker.record_failure()
                breaker.record_failure()
                breaker.record_failure()
                times.append(breaker.retry_at)
                clock.run_until_idle()
                breaker.record_post()
                breaker.record_success()
            return times

        assert retry_times(7) == retry_times(7)
        assert retry_times(7) != retry_times(8)

    def test_jitter_stays_within_the_configured_band(self):
        clock = SimulationClock()
        breaker = make_breaker(clock, jitter=0.25, seed=3)
        for _ in range(3):
            breaker.record_failure()
        cooldown = breaker.retry_at - clock.now
        assert 75.0 <= cooldown <= 125.0


class TestBookkeeping:
    def test_blocked_posts_are_counted(self):
        breaker = make_breaker()
        breaker.record_blocked()
        breaker.record_blocked()
        assert breaker.stats.posts_blocked == 2

    def test_describe_mentions_state_and_blocks(self):
        breaker = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        breaker.record_blocked()
        text = breaker.describe()
        assert "state open" in text
        assert "retry at" in text
        assert "1 post(s) blocked" in text

    def test_stats_start_zeroed(self):
        assert MarketplaceCircuitBreaker().stats == BreakerStats()
