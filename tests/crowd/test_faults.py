"""Unit tests for fault injection in the simulated MTurk platform."""

import pytest

from repro.crowd import (
    AssignmentStatus,
    CallbackOracle,
    FaultProfile,
    FormField,
    HITContent,
    HITInterface,
    HITItem,
    HITStatus,
    MTurkSimulator,
    PopulationMix,
    SimulationClock,
    WorkerPool,
)
from repro.errors import CrowdError


ORACLE = CallbackOracle(
    form=lambda item, field: f"{field.name} of {item.payload['company']}",
    predicate=lambda item: item.payload.get("truth", True),
)


def make_platform(seed=0, faults=None, pool_size=60):
    clock = SimulationClock()
    pool = WorkerPool(size=pool_size, seed=seed, mix=PopulationMix())
    platform = MTurkSimulator(clock, pool, ORACLE, faults=faults)
    return clock, platform


def form_content(company="Acme"):
    return HITContent(
        interface=HITInterface.QUESTION_FORM,
        title="Find the CEO",
        instructions="Find the CEO and phone",
        items=(HITItem("item0", company, {"company": company}),),
        fields=(FormField("CEO"), FormField("Phone")),
    )


class TestFaultProfile:
    def test_default_profile_is_inert(self):
        assert not FaultProfile().enabled
        assert FaultProfile().describe() == "faults off"

    def test_any_knob_enables(self):
        assert FaultProfile(abandonment_rate=0.1).enabled
        assert FaultProfile(duplicate_rate=0.1).enabled
        assert FaultProfile(late_rate=0.1).enabled
        assert FaultProfile(pickup_slowdown=2.0).enabled
        assert FaultProfile(hit_lifetime=60.0).enabled

    def test_validation(self):
        with pytest.raises(CrowdError):
            FaultProfile(abandonment_rate=1.5)
        with pytest.raises(CrowdError):
            FaultProfile(pickup_slowdown=0.0)
        with pytest.raises(CrowdError):
            FaultProfile(hit_lifetime=-1.0)

    def test_inert_profile_matches_no_profile_exactly(self):
        """faults=FaultProfile() must not perturb the cooperative simulation."""

        def run(faults):
            clock, platform = make_platform(seed=3, faults=faults)
            hit = platform.create_hit(form_content(), reward=0.02, max_assignments=3)
            clock.run_until_idle()
            return [
                (a.worker_id, a.accepted_at, a.submitted_at)
                for a in platform.submitted_assignments(hit.hit_id)
            ]

        assert run(None) == run(FaultProfile())


class TestAbandonment:
    def test_abandoned_assignments_are_replaced(self):
        faults = FaultProfile(seed=5, abandonment_rate=0.5, hit_lifetime=48 * 3600.0)
        clock, platform = make_platform(seed=1, faults=faults)
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=4)
        clock.run_until_idle()
        assert platform.stats.assignments_abandoned > 0
        abandoned = [a for a in hit.assignments if a.status is AssignmentStatus.ABANDONED]
        assert len(abandoned) == platform.stats.assignments_abandoned
        # Replacement workers filled the abandoned slots.
        assert hit.status is HITStatus.COMPLETED
        assert len(hit.submitted_assignments) == 4
        # No worker holds two assignments of one HIT.
        workers = [a.worker_id for a in hit.assignments]
        assert len(workers) == len(set(workers))

    def test_abandoned_work_is_never_paid(self):
        faults = FaultProfile(seed=5, abandonment_rate=1.0, hit_lifetime=600.0)
        clock, platform = make_platform(seed=1, faults=faults)
        platform.create_hit(form_content(), reward=0.02, max_assignments=2)
        clock.run_until_idle()
        assert platform.stats.assignments_submitted == 0
        assert platform.total_cost == 0.0


class TestExpiry:
    def test_unpicked_hit_expires_and_fires_listener(self):
        faults = FaultProfile(seed=5, hit_lifetime=30.0, pickup_slowdown=100.0)
        clock, platform = make_platform(seed=1, faults=faults)
        expired = []
        platform.on_hit_expired(lambda hit: expired.append(hit.hit_id))
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=3)
        clock.run_until_idle()
        assert hit.status is HITStatus.EXPIRED
        assert expired == [hit.hit_id]
        assert platform.stats.hits_expired == 1
        assert platform.total_cost == 0.0

    def test_completed_hit_cancels_its_expiry_event(self):
        faults = FaultProfile(seed=5, hit_lifetime=48 * 3600.0)
        clock, platform = make_platform(seed=1, faults=faults)
        expired = []
        platform.on_hit_expired(lambda hit: expired.append(hit.hit_id))
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=2)
        clock.run_until_idle()
        assert hit.status is HITStatus.COMPLETED
        assert expired == []

    def test_manual_expire_fires_listener_once(self):
        clock, platform = make_platform(seed=1)
        expired = []
        platform.on_hit_expired(lambda hit: expired.append(hit.hit_id))
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=1)
        platform.expire_hit(hit.hit_id)
        platform.expire_hit(hit.hit_id)  # idempotent
        assert expired == [hit.hit_id]
        assert platform.stats.hits_expired == 1

    def test_submission_after_expiry_is_dropped_unpaid(self):
        clock, platform = make_platform(seed=1)
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=1)
        platform.expire_hit(hit.hit_id)
        clock.run_until_idle()  # the in-flight submission lands late
        assert platform.stats.late_submissions_dropped == 1
        assert platform.stats.assignments_submitted == 0
        assert platform.total_cost == 0.0


class TestDuplicatesAndLateness:
    def test_duplicates_are_ignored_and_unpaid(self):
        faults = FaultProfile(seed=5, duplicate_rate=1.0, hit_lifetime=48 * 3600.0)
        clock, platform = make_platform(seed=1, faults=faults)
        seen = []
        platform.on_assignment_submitted(lambda hit, a: seen.append(a.assignment_id))
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=3)
        clock.run_until_idle()
        assert platform.stats.duplicate_submissions_ignored == 3
        assert platform.stats.assignments_submitted == 3
        # Listeners fired once per real submission, and each was paid once.
        assert len(seen) == 3
        assert platform.total_cost == pytest.approx(3 * (0.02 + 0.005))
        assert len(hit.submitted_assignments) == 3

    def test_late_submissions_miss_short_deadlines(self):
        faults = FaultProfile(seed=5, late_rate=1.0, hit_lifetime=900.0)
        clock, platform = make_platform(seed=1, faults=faults)
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=2)
        clock.run_until_idle()
        assert hit.status is HITStatus.EXPIRED
        assert platform.stats.late_submissions_dropped == 2
        assert platform.total_cost == 0.0


class TestDeterminism:
    def test_faulty_runs_are_reproducible(self):
        faults = FaultProfile(
            seed=9, abandonment_rate=0.3, duplicate_rate=0.3, late_rate=0.2, hit_lifetime=3600.0
        )

        def run():
            clock, platform = make_platform(seed=2, faults=faults)
            for i in range(4):
                platform.create_hit(form_content(f"Co{i}"), reward=0.02, max_assignments=3)
            clock.run_until_idle()
            stats = platform.stats
            return (
                stats.assignments_submitted,
                stats.assignments_abandoned,
                stats.duplicate_submissions_ignored,
                stats.late_submissions_dropped,
                stats.hits_expired,
                round(platform.total_cost, 9),
            )

        assert run() == run()
