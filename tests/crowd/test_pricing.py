"""Unit tests for the MTurk pricing policy."""

import pytest

from repro.crowd import CENTS, DEFAULT_PRICING, PricingPolicy
from repro.errors import CrowdError


class TestPricingPolicy:
    def test_default_fee_has_minimum(self):
        # 10% of one cent is below the half-cent minimum fee.
        assert DEFAULT_PRICING.fee(1 * CENTS) == pytest.approx(0.005)
        # For a $1 reward the proportional fee dominates.
        assert DEFAULT_PRICING.fee(1.0) == pytest.approx(0.10)

    def test_assignment_cost_adds_fee(self):
        assert DEFAULT_PRICING.assignment_cost(0.02) == pytest.approx(0.025)

    def test_hit_cost_scales_with_assignments(self):
        assert DEFAULT_PRICING.hit_cost(0.02, 5) == pytest.approx(5 * 0.025)

    def test_reward_below_minimum_rejected(self):
        with pytest.raises(CrowdError):
            DEFAULT_PRICING.assignment_cost(0.001)

    def test_zero_assignments_rejected(self):
        with pytest.raises(CrowdError):
            DEFAULT_PRICING.hit_cost(0.02, 0)

    def test_invalid_policy_parameters_rejected(self):
        with pytest.raises(CrowdError):
            PricingPolicy(commission_rate=-0.1)
        with pytest.raises(CrowdError):
            PricingPolicy(minimum_fee=-1)

    def test_custom_policy_without_minimum_fee(self):
        policy = PricingPolicy(commission_rate=0.2, minimum_fee=0.0, minimum_reward=0.0)
        assert policy.assignment_cost(0.01) == pytest.approx(0.012)
