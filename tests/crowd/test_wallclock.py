"""WallClock: the real-time adapter over the simulation clock.

``time_source`` and ``sleep`` are injectable, so these tests drive a wall
clock with a fake monotonic time: a sleep advances fake time instead of
blocking, which makes the sleeping/firing behavior fully deterministic.
"""

import pytest

from repro.crowd.clock import SimulationClock
from repro.crowd.wallclock import WallClock
from repro.errors import CrowdError


class FakeTime:
    """A controllable monotonic clock whose sleep() advances it."""

    def __init__(self, start: float = 1000.0):
        self.now = start
        self.sleeps: list[float] = []

    def time_source(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


def make_clock(start: float = 0.0) -> tuple[WallClock, FakeTime]:
    fake = FakeTime()
    clock = WallClock(start, time_source=fake.time_source, sleep=fake.sleep)
    return clock, fake


class TestWallTime:
    def test_now_tracks_the_wall(self):
        clock, fake = make_clock()
        assert clock.now == 0.0
        fake.now += 2.5
        assert clock.now == 2.5

    def test_now_never_rewinds(self):
        clock, fake = make_clock()
        fake.now += 5.0
        assert clock.now == 5.0
        # A (hypothetically) stalled time source cannot move `now` back.
        fake.now -= 1.0
        assert clock.now == 5.0

    def test_start_offset_respected(self):
        fake = FakeTime()
        clock = WallClock(100.0, time_source=fake.time_source, sleep=fake.sleep)
        assert clock.now == 100.0
        fake.now += 3.0
        assert clock.now == 103.0


class TestAdvancing:
    def test_advance_sleeps_until_target_then_fires(self):
        clock, fake = make_clock()
        fired: list[str] = []
        clock.schedule_at(2.0, lambda: fired.append("a"), label="a")
        clock.schedule_at(10.0, lambda: fired.append("late"), label="late")
        n = clock.advance_to(2.0)
        assert n == 1
        assert fired == ["a"]
        assert fake.sleeps  # really waited
        assert sum(fake.sleeps) == pytest.approx(2.0)

    def test_sleep_is_sliced_for_interruptibility(self):
        clock, fake = make_clock()
        clock.schedule_at(2.0, lambda: None)
        clock.advance_to(2.0)
        assert all(s <= WallClock.MAX_SLEEP_SLICE for s in fake.sleeps)
        assert len(fake.sleeps) >= 4  # 2.0s in <=0.5s slices

    def test_events_due_while_sleeping_also_fire(self):
        """Wall time overshooting the target must not strand due events."""
        fake = FakeTime()

        def oversleep(seconds: float) -> None:
            fake.sleep(seconds + 0.8)  # a slow host: every sleep runs long

        clock = WallClock(time_source=fake.time_source, sleep=oversleep)
        fired: list[str] = []
        clock.schedule_at(1.0, lambda: fired.append("a"))
        clock.schedule_at(1.25, lambda: fired.append("b"))
        # Target 1.0, but the first 0.5s sleep slice returns at wall 1.3:
        # the batch fired covers everything due by the instant the sleep
        # actually ended, not just the named target.
        assert clock.advance_to(1.0) == 2
        assert fired == ["a", "b"]
        assert clock.now >= 1.25

    def test_advance_into_the_past_raises(self):
        clock, fake = make_clock()
        fake.now += 5.0
        assert clock.now == 5.0
        with pytest.raises(CrowdError, match="rewind"):
            clock.advance_to(1.0)

    def test_run_next_sleeps_to_earliest_event(self):
        clock, fake = make_clock()
        fired: list[str] = []
        clock.schedule_at(0.75, lambda: fired.append("x"))
        assert clock.run_next() is True
        assert fired == ["x"]
        assert sum(fake.sleeps) == pytest.approx(0.75)
        assert clock.run_next() is False

    def test_run_until_idle_drains_in_order(self):
        clock, fake = make_clock()
        fired: list[str] = []
        clock.schedule_at(0.2, lambda: fired.append("a"))
        clock.schedule_at(0.1, lambda: fired.append("b"))
        clock.schedule_at(0.2, lambda: fired.append("c"))  # FIFO at same instant
        clock.run_until_idle()
        assert fired == ["b", "a", "c"]


class TestSimulationParity:
    def test_same_event_sequence_as_simulation_clock(self):
        """Inherited scheduling semantics: the firing order is identical."""

        def drive(clock) -> list[str]:
            fired: list[str] = []
            clock.schedule_at(3.0, lambda: fired.append("late"))
            early = clock.schedule_at(1.0, lambda: fired.append("early"))
            clock.schedule_at(1.0, lambda: fired.append("tie"))
            early.cancel()
            clock.run_until_idle()
            return fired

        fake = FakeTime()
        wall = WallClock(time_source=fake.time_source, sleep=fake.sleep)
        assert drive(wall) == drive(SimulationClock())
