"""Unit tests for the HIT / assignment lifecycle and content model."""

import pytest

from repro.crowd import (
    Assignment,
    AssignmentStatus,
    FormField,
    HIT,
    HITContent,
    HITInterface,
    HITItem,
    HITStatus,
)
from repro.errors import AssignmentError, HITError


def form_content(n_items=1):
    return HITContent(
        interface=HITInterface.QUESTION_FORM,
        title="Find the CEO",
        instructions="Find the CEO and the CEO's phone number for the company",
        items=tuple(
            HITItem(f"item{i}", f"Company {i}", {"company": f"Company {i}"}) for i in range(n_items)
        ),
        fields=(FormField("CEO"), FormField("Phone")),
    )


def join_columns_content(n_left=2, n_right=3):
    items = [
        HITItem(f"L{i}", "celebrity", {"image": f"celeb-{i}"}, group="left") for i in range(n_left)
    ] + [
        HITItem(f"R{i}", "spotted", {"image": f"spot-{i}"}, group="right") for i in range(n_right)
    ]
    return HITContent(
        interface=HITInterface.JOIN_COLUMNS,
        title="Match celebrities",
        instructions="Drag a picture of any Celebrity to their matching picture",
        items=tuple(items),
        left_label="Celebrity",
        right_label="Spotted Star",
    )


class TestHITContent:
    def test_question_form_requires_fields(self):
        with pytest.raises(HITError):
            HITContent(
                interface=HITInterface.QUESTION_FORM,
                title="t",
                instructions="i",
                items=(HITItem("a", "p"),),
            )

    def test_content_requires_items(self):
        with pytest.raises(HITError):
            HITContent(HITInterface.BINARY_CHOICE, "t", "i", items=())

    def test_join_columns_requires_both_sides(self):
        items = (HITItem("L0", "p", group="left"),)
        with pytest.raises(HITError):
            HITContent(HITInterface.JOIN_COLUMNS, "t", "i", items=items)

    def test_left_right_partition(self):
        content = join_columns_content(2, 3)
        assert len(content.left_items) == 2
        assert len(content.right_items) == 3

    def test_work_units_for_join_columns_is_cross_product(self):
        assert join_columns_content(2, 3).work_units == 6
        assert form_content(4).work_units == 4


class TestHITLifecycle:
    def test_hit_validation(self):
        with pytest.raises(HITError):
            HIT("h", form_content(), reward=0.01, max_assignments=0, created_at=0.0)
        with pytest.raises(HITError):
            HIT("h", form_content(), reward=-0.01, max_assignments=1, created_at=0.0)

    def test_fully_submitted_tracking(self):
        hit = HIT("h", form_content(), reward=0.01, max_assignments=2, created_at=0.0)
        assert not hit.is_fully_submitted
        for i in range(2):
            assignment = Assignment(f"a{i}", "h", f"w{i}", accepted_at=10.0)
            assignment.submit({"item0": {"CEO": "Jane", "Phone": "5"}}, at=20.0)
            hit.assignments.append(assignment)
        assert hit.is_fully_submitted
        assert hit.expires_at == pytest.approx(24 * 3600.0)


class TestAssignmentLifecycle:
    def make(self):
        return Assignment("a1", "h1", "w1", accepted_at=5.0)

    def test_submit_approve_flow(self):
        assignment = self.make()
        assignment.submit({"x": True}, at=65.0)
        assert assignment.status is AssignmentStatus.SUBMITTED
        assert assignment.work_duration == pytest.approx(60.0)
        assignment.approve()
        assert assignment.status is AssignmentStatus.APPROVED

    def test_submit_reject_flow(self):
        assignment = self.make()
        assignment.submit({}, at=6.0)
        assignment.reject()
        assert assignment.status is AssignmentStatus.REJECTED

    def test_double_submit_rejected(self):
        assignment = self.make()
        assignment.submit({}, at=6.0)
        with pytest.raises(AssignmentError):
            assignment.submit({}, at=7.0)

    def test_submit_before_accept_rejected(self):
        with pytest.raises(AssignmentError):
            self.make().submit({}, at=1.0)

    def test_approve_unsubmitted_rejected(self):
        with pytest.raises(AssignmentError):
            self.make().approve()

    def test_work_duration_zero_while_in_flight(self):
        assert self.make().work_duration == 0.0

    def test_hit_status_enum_values(self):
        assert HITStatus.OPEN.value == "open"
        assert HITStatus.COMPLETED.value == "completed"
