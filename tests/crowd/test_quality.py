"""Unit tests for worker reputations, gold probes, and quality control wiring."""

import pytest

from repro.crowd import (
    GoldQuestion,
    GoldStandardPool,
    PopulationMix,
    QualityConfig,
    WorkerReputation,
)
from repro.errors import CrowdError
from repro.experiments.harness import build_products_engine

PRODUCTS_SQL = "SELECT name FROM products WHERE isTargetColor(name)"


class TestQualityConfig:
    def test_defaults_validate(self):
        config = QualityConfig()
        assert config.wave_size == 3
        assert config.adaptive_redundancy

    def test_validation(self):
        with pytest.raises(CrowdError):
            QualityConfig(gold_frequency=2.0)
        with pytest.raises(CrowdError):
            QualityConfig(wave_size=0)
        with pytest.raises(CrowdError):
            QualityConfig(confidence_threshold=0.0)
        with pytest.raises(CrowdError):
            QualityConfig(max_attempts=0)


class TestWorkerReputation:
    def test_unseen_worker_sits_at_the_prior(self):
        reputation = WorkerReputation()
        assert reputation.accuracy("W1") == pytest.approx(0.8)
        assert reputation.observations("W1") == 0.0
        assert reputation.is_uniform(["W1", "W2"])

    def test_gold_failures_drag_the_posterior_down(self):
        reputation = WorkerReputation()
        for _ in range(4):
            reputation.record_gold("spammer", False)
        for _ in range(4):
            reputation.record_gold("diligent", True)
        assert reputation.accuracy("spammer") < 0.5
        assert reputation.accuracy("diligent") > 0.85
        assert reputation.flagged_workers() == ["spammer"]
        assert not reputation.is_uniform(["spammer"])

    def test_agreement_weighs_less_than_gold(self):
        by_gold, by_agreement = WorkerReputation(), WorkerReputation()
        by_gold.record_gold("w", False)
        by_agreement.record_agreement("w", False, weight=0.25)
        assert by_gold.accuracy("w") < by_agreement.accuracy("w")

    def test_vote_weight_orders_by_accuracy(self):
        reputation = WorkerReputation()
        for _ in range(5):
            reputation.record_gold("good", True)
            reputation.record_gold("bad", False)
        assert (
            reputation.vote_weight("good")
            > reputation.vote_weight("unseen")
            > reputation.vote_weight("bad")
            > 0.0
        )

    def test_population_accuracy_needs_enough_informed_workers(self):
        reputation = WorkerReputation()
        assert reputation.population_accuracy() is None
        for index in range(5):
            for _ in range(3):
                reputation.record_gold(f"W{index}", index > 0)
        observed = reputation.population_accuracy()
        assert observed is not None
        assert 0.5 < observed < 0.95

    def test_summary_shape(self):
        reputation = WorkerReputation()
        reputation.record_gold("w", True)
        summary = reputation.summary()
        assert summary["workers_tracked"] == 1
        assert summary["gold_observations"] == 1


class TestGoldQuestions:
    def test_boolean_matching(self):
        question = GoldQuestion(prompt="p", expected=True)
        assert question.matches(True)
        assert not question.matches(False)
        assert not question.matches(None)
        assert not question.matches("yes")

    def test_string_matching_is_case_insensitive(self):
        question = GoldQuestion(prompt="p", expected="Left")
        assert question.matches(" left ")
        assert not question.matches("right")

    def test_mapping_matching_checks_expected_fields_only(self):
        question = GoldQuestion(prompt="p", expected={"CEO": "Ada"})
        assert question.matches({"CEO": "ada", "Phone": "whatever"})
        assert not question.matches({"Phone": "555"})

    def test_numeric_matching_uses_tolerance(self):
        question = GoldQuestion(prompt="p", expected=5.0, tolerance=1.5)
        assert question.matches(6.0)
        assert not question.matches(7.0)

    def test_pool_register_and_pick(self):
        import random

        pool = GoldStandardPool()
        with pytest.raises(CrowdError):
            pool.register("spec", [])
        pool.register("spec", [GoldQuestion(prompt="a", expected=True)])
        assert len(pool) == 1
        assert pool.pick("spec", random.Random(0)).prompt == "a"
        assert pool.pick("other", random.Random(0)) is None


class TestQualityControlEndToEnd:
    def test_gold_probes_feed_reputation(self):
        run = build_products_engine(
            n_products=12,
            assignments=3,
            filter_batch=4,
            seed=77,
            quality=QualityConfig(gold_frequency=1.0, adaptive_redundancy=False, seed=5),
        )
        run.engine.query(PRODUCTS_SQL).wait()
        stats = run.engine.task_manager.stats
        assert stats.gold_probes_posted > 0
        assert stats.gold_answers_scored >= stats.gold_probes_posted
        assert run.engine.reputation is not None
        assert run.engine.reputation.tracked_workers()

    def test_adaptive_redundancy_stops_easy_tasks_early(self):
        reliable = PopulationMix(diligent=1.0, noisy=0.0, lazy=0.0, spammer=0.0)
        run = build_products_engine(
            n_products=10,
            assignments=5,
            filter_batch=5,
            seed=78,
            population_mix=reliable,
            quality=QualityConfig(gold_frequency=0.0, wave_size=3, seed=5),
        )
        handle = run.engine.query(PRODUCTS_SQL)
        handle.wait()
        spec_stats = run.engine.statistics.spec("isTargetColor")
        # A diligent population (97% accurate) agrees almost immediately:
        # nearly every task stops after the first wave of 3 instead of buying
        # all 5 assignments (the occasional slip buys one extra wave).
        assert spec_stats.assignments_received < 10 * 4
        assert run.engine.task_manager.stats.early_stopped_tasks >= 8

    def test_adaptive_redundancy_never_exceeds_the_target(self):
        spammy = PopulationMix(diligent=0.2, noisy=0.2, lazy=0.1, spammer=0.5)
        run = build_products_engine(
            n_products=12,
            assignments=5,
            filter_batch=4,
            seed=79,
            population_mix=spammy,
            quality=QualityConfig(gold_frequency=0.5, wave_size=3, seed=5),
        )
        handle = run.engine.query(PRODUCTS_SQL)
        handle.wait()
        # Even on a hostile mix the waves never buy more than the spec's
        # 5 assignments for any task (checked in aggregate: 12 tasks).
        spec_stats = run.engine.statistics.spec("isTargetColor")
        assert spec_stats.assignments_received <= 12 * 5
        assert spec_stats.tasks_completed == 12

    def test_wave_reposts_use_fresh_workers_per_task(self):
        """Redundancy assumes independent judges: across waves and fault
        re-posts, no worker may vote twice on the same task."""
        spammy = PopulationMix(diligent=0.2, noisy=0.2, lazy=0.1, spammer=0.5)
        run = build_products_engine(
            n_products=12,
            assignments=5,
            filter_batch=4,
            seed=83,
            population_mix=spammy,
            quality=QualityConfig(gold_frequency=0.0, wave_size=3, seed=5),
        )
        engine = run.engine
        per_task_workers: dict[str, list[str]] = {}
        engine.task_manager.on_result_delivered(
            lambda result: per_task_workers.__setitem__(
                result.task.task_id, list(result.answers.worker_ids)
            )
        )
        engine.query(PRODUCTS_SQL).wait()
        assert engine.task_manager.stats.wave_continuations > 0  # waves happened
        for task_id, workers in per_task_workers.items():
            assert len(workers) == len(set(workers)), f"{task_id} heard a worker twice"

    def test_rating_tasks_do_not_poison_reputations(self):
        """Continuous answers never equal their mean; agreement scoring must
        use a tolerance, or every honest rater would look like a spammer."""
        reliable = PopulationMix(diligent=1.0, noisy=0.0, lazy=0.0, spammer=0.0)
        run = build_products_engine(
            n_products=12,
            assignments=3,
            seed=81,
            population_mix=reliable,
            quality=QualityConfig(gold_frequency=0.0, seed=5),
        )
        run.engine.query("SELECT name FROM products ORDER BY rateSize(name)").wait()
        reputation = run.engine.reputation
        assert reputation.tracked_workers()
        # A fully diligent population rating consistently must not be flagged.
        assert reputation.flagged_workers() == []

    def test_explicit_max_attempts_wins_over_the_quality_config(self):
        from repro.core.tasks.task_manager import TaskManager

        run = build_products_engine(n_products=4, seed=82)
        engine = run.engine
        manager = TaskManager(
            engine.platform,
            engine.statistics,
            engine.budget_ledger,
            quality=QualityConfig(max_attempts=3),
            max_attempts=10,
        )
        assert manager.max_attempts == 10
        defaulted = TaskManager(
            engine.platform,
            engine.statistics,
            engine.budget_ledger,
            quality=QualityConfig(max_attempts=4),
        )
        assert defaulted.max_attempts == 4

    def test_quality_off_is_byte_identical_to_seed_behaviour(self):
        def fingerprint(quality):
            run = build_products_engine(
                n_products=10, assignments=3, filter_batch=2, seed=80, quality=quality
            )
            handle = run.engine.query(PRODUCTS_SQL)
            rows = handle.wait()
            return (
                [row.to_dict() for row in rows],
                run.engine.platform.stats.hits_created,
                run.engine.platform.stats.assignments_submitted,
                round(handle.total_cost, 12),
            )

        # weighted_voting + gold off, adaptive_redundancy off -> the quality
        # plumbing is inert and must reproduce the legacy run exactly.
        inert = QualityConfig(
            gold_frequency=0.0, weighted_voting=False, adaptive_redundancy=False
        )
        assert fingerprint(None) == fingerprint(inert)
