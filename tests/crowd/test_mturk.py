"""Unit tests for the simulated MTurk requester service."""

import pytest

from repro.crowd import (
    AssignmentStatus,
    CallbackOracle,
    FormField,
    HITContent,
    HITInterface,
    HITItem,
    HITStatus,
    MTurkSimulator,
    PopulationMix,
    SimulationClock,
    WorkerPool,
)
from repro.errors import CrowdError, HITError


ORACLE = CallbackOracle(
    form=lambda item, field: f"{field.name} of {item.payload['company']}",
    predicate=lambda item: item.payload.get("truth", True),
)


def make_platform(seed=0, mix=None, auto_approve=True):
    clock = SimulationClock()
    pool = WorkerPool(size=60, seed=seed, mix=mix or PopulationMix())
    platform = MTurkSimulator(clock, pool, ORACLE, auto_approve=auto_approve)
    return clock, platform


def form_content(company="Acme"):
    return HITContent(
        interface=HITInterface.QUESTION_FORM,
        title="Find the CEO",
        instructions="Find the CEO and phone",
        items=(HITItem("item0", company, {"company": company}),),
        fields=(FormField("CEO"), FormField("Phone")),
    )


class TestHITCreation:
    def test_create_and_complete_hit(self):
        clock, platform = make_platform()
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=3)
        assert hit.status is HITStatus.OPEN
        assert platform.get_hit(hit.hit_id) is hit
        clock.run_until_idle()
        assert hit.status is HITStatus.COMPLETED
        assert len(platform.submitted_assignments(hit.hit_id)) == 3

    def test_answers_follow_oracle_for_reliable_population(self):
        clock, platform = make_platform(mix=PopulationMix(diligent=1, noisy=0, lazy=0, spammer=0))
        hit = platform.create_hit(form_content("Initech"), reward=0.02, max_assignments=1)
        clock.run_until_idle()
        answers = platform.submitted_assignments(hit.hit_id)[0].answers
        assert answers["item0"]["CEO"] == "CEO of Initech"

    def test_reward_below_minimum_rejected(self):
        _, platform = make_platform()
        with pytest.raises(CrowdError):
            platform.create_hit(form_content(), reward=0.0001)

    def test_unknown_hit_lookup(self):
        _, platform = make_platform()
        with pytest.raises(HITError):
            platform.get_hit("nope")

    def test_completion_takes_simulated_minutes(self):
        clock, platform = make_platform()
        platform.create_hit(form_content(), reward=0.01, max_assignments=1)
        clock.run_until_idle()
        # Pick-up plus work time should be on the order of minutes, not ms.
        assert clock.now > 30.0

    def test_listener_fires_per_assignment(self):
        clock, platform = make_platform()
        seen = []
        platform.on_assignment_submitted(lambda hit, a: seen.append(a.assignment_id))
        platform.create_hit(form_content(), reward=0.02, max_assignments=4)
        clock.run_until_idle()
        assert len(seen) == 4


class TestAccounting:
    def test_auto_approve_pays_reward_plus_fee(self):
        clock, platform = make_platform()
        platform.create_hit(form_content(), reward=0.02, max_assignments=2)
        clock.run_until_idle()
        assert platform.stats.assignments_approved == 2
        assert platform.total_cost == pytest.approx(2 * (0.02 + 0.005))

    def test_manual_approval_flow(self):
        clock, platform = make_platform(auto_approve=False)
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=1)
        clock.run_until_idle()
        assert platform.total_cost == 0.0
        assignment = platform.submitted_assignments(hit.hit_id)[0]
        platform.approve_assignment(assignment.assignment_id)
        assert assignment.status is AssignmentStatus.APPROVED
        assert platform.total_cost > 0

    def test_reject_does_not_pay(self):
        clock, platform = make_platform(auto_approve=False)
        hit = platform.create_hit(form_content(), reward=0.02, max_assignments=1)
        clock.run_until_idle()
        assignment = platform.submitted_assignments(hit.hit_id)[0]
        platform.reject_assignment(assignment.assignment_id)
        assert platform.stats.assignments_rejected == 1
        assert platform.total_cost == 0.0

    def test_unknown_assignment_raises(self):
        _, platform = make_platform()
        with pytest.raises(CrowdError):
            platform.approve_assignment("missing")

    def test_estimate_cost(self):
        _, platform = make_platform()
        assert platform.estimate_cost(0.02, hit_count=10, assignments=3) == pytest.approx(
            10 * 3 * 0.025
        )

    def test_per_worker_statistics_collected(self):
        clock, platform = make_platform()
        platform.create_hit(form_content(), reward=0.02, max_assignments=5)
        clock.run_until_idle()
        assert sum(platform.stats.per_worker_assignments.values()) == 5


class TestLifecycleManagement:
    def test_expired_hit_drops_late_workers(self):
        clock, platform = make_platform()
        # A HIT whose lifetime is shorter than any plausible pick-up delay.
        hit = platform.create_hit(form_content(), reward=0.01, max_assignments=3, lifetime=0.001)
        clock.run_until_idle()
        assert len(hit.assignments) <= 3
        assert hit.status in (HITStatus.OPEN, HITStatus.COMPLETED)

    def test_expire_and_dispose(self):
        clock, platform = make_platform()
        hit = platform.create_hit(form_content(), reward=0.01, max_assignments=1)
        platform.expire_hit(hit.hit_id)
        assert hit.status is HITStatus.EXPIRED
        platform.dispose_hit(hit.hit_id)
        assert hit.status is HITStatus.DISPOSED

    def test_cannot_dispose_open_hit(self):
        _, platform = make_platform()
        hit = platform.create_hit(form_content(), reward=0.01, max_assignments=1)
        with pytest.raises(HITError):
            platform.dispose_hit(hit.hit_id)

    def test_outstanding_assignments_and_open_hits(self):
        clock, platform = make_platform()
        platform.create_hit(form_content(), reward=0.01, max_assignments=2)
        assert platform.outstanding_assignments() == 2
        assert len(platform.open_hits()) == 1
        clock.run_until_idle()
        assert platform.outstanding_assignments() == 0
        assert len(platform.open_hits()) == 0

    def test_runs_are_reproducible_for_same_seed(self):
        def run(seed):
            clock, platform = make_platform(seed=seed)
            hit = platform.create_hit(form_content(), reward=0.02, max_assignments=3)
            clock.run_until_idle()
            return [
                (a.worker_id, round(a.submitted_at, 6))
                for a in platform.submitted_assignments(hit.hit_id)
            ]

        assert run(42) == run(42)
        assert run(42) != run(43)
