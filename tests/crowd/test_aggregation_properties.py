"""Property-based tests for confidence-weighted aggregation and redundancy.

Extends the ``tests/storage/test_properties.py`` style into the crowd layer:

* under *uniform* reputations, every weighted aggregate must equal its plain
  counterpart exactly (``MajorityVote`` / ``FieldwiseMajority`` /
  ``MeanRating``) across all workload answer kinds — booleans (filters and
  join predicates), comparison labels, form mappings, and numeric ratings;
* the adaptive redundancy rule never emits more assignments than the
  configured maximum, for any accuracy/target combination, and waves never
  request more than the remaining budget of a task.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import (
    AnswerList,
    ConfidenceWeightedVote,
    FieldwiseMajority,
    MajorityVote,
    MeanRating,
    WeightedFieldwiseMajority,
    WeightedMeanRating,
    weighted_confidence,
)
from repro.core.optimizer.optimizer import OptimizerConfig, _pick_assignments
from repro.crowd.quality import WorkerReputation

worker_ids = st.lists(
    st.sampled_from([f"W{i:02d}" for i in range(8)]), min_size=1, max_size=9
)

# Answer kinds the workloads actually produce.
bool_answers = st.booleans()
comparison_answers = st.sampled_from(["left", "right"])
rating_answers = st.floats(min_value=1.0, max_value=7.0, allow_nan=False)
form_answers = st.fixed_dictionaries(
    {"CEO": st.sampled_from(["Ada", "Grace", "Edsger"]), "Phone": st.sampled_from(["1", "2"])}
)
categorical_answers = st.one_of(bool_answers, comparison_answers, form_answers)


def answer_list(data, strategy, workers):
    answers = [data.draw(strategy) for _ in workers]
    return AnswerList.of(answers, workers)


@given(worker_ids, st.data(), st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
@settings(max_examples=150)
def test_weighted_vote_equals_majority_under_uniform_weights(workers, data, weight):
    answers = answer_list(data, categorical_answers, workers)
    uniform = {worker_id: weight for worker_id in workers}
    assert ConfidenceWeightedVote(uniform).reduce(answers) == MajorityVote().reduce(answers)


@given(worker_ids, st.data())
@settings(max_examples=100)
def test_weighted_vote_with_fresh_reputation_equals_majority(workers, data):
    """A just-constructed reputation tracker is uniform by construction."""
    answers = answer_list(data, categorical_answers, workers)
    reputation = WorkerReputation()
    assert reputation.is_uniform(tuple(workers))
    weights = reputation.vote_weights(tuple(workers))
    assert ConfidenceWeightedVote(weights).reduce(answers) == MajorityVote().reduce(answers)


@given(worker_ids, st.data(), st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
@settings(max_examples=100)
def test_weighted_fieldwise_equals_fieldwise_under_uniform_weights(workers, data, weight):
    answers = answer_list(data, form_answers, workers)
    uniform = {worker_id: weight for worker_id in workers}
    assert WeightedFieldwiseMajority(uniform).reduce(answers) == FieldwiseMajority().reduce(
        answers
    )


@given(worker_ids, st.data(), st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
@settings(max_examples=100)
def test_weighted_mean_equals_mean_under_uniform_weights(workers, data, weight):
    answers = answer_list(data, rating_answers, workers)
    uniform = {worker_id: weight for worker_id in workers}
    assert WeightedMeanRating(uniform).reduce(answers) == MeanRating().reduce(answers)


@given(worker_ids, st.data())
@settings(max_examples=100)
def test_weighted_confidence_bounds_and_uniform_degradation(workers, data):
    answers = answer_list(data, categorical_answers, workers)
    uniform = {worker_id: 1.0 for worker_id in workers}
    confidence = weighted_confidence(answers, uniform)
    assert 0.0 < confidence <= 1.0
    assert confidence == answers.agreement()


@given(
    st.lists(
        st.sampled_from([f"W{i:02d}" for i in range(8)]), min_size=1, max_size=8, unique=True
    ),
    st.data(),
)
@settings(max_examples=60)
def test_skewed_weights_follow_the_trusted_worker(workers, data):
    """With one overwhelmingly trusted worker, the vote follows them."""
    answers = answer_list(data, bool_answers, workers)
    trusted = workers[0]
    weights = {worker_id: 0.01 for worker_id in workers}
    weights[trusted] = 1000.0
    reduced = ConfidenceWeightedVote(weights).reduce(answers)
    assert reduced == answers.answers[workers.index(trusted)]


@given(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.01, max_value=1.0, exclude_max=False, allow_nan=False),
    st.integers(min_value=1, max_value=15).filter(lambda n: n % 2 == 1),
)
@settings(max_examples=200)
def test_adaptive_redundancy_never_exceeds_the_configured_maximum(accuracy, target, max_odd):
    config = OptimizerConfig(
        max_assignments=max_odd,
        candidate_assignments=tuple(k for k in (1, 3, 5, 7, 9, 11, 13, 15) if k <= max_odd),
    )
    chosen = _pick_assignments(accuracy, config, target)
    assert 1 <= chosen <= config.max_assignments
    assert chosen in config.candidate_assignments


@given(
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=0, max_value=12),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=200)
def test_wave_requests_never_overshoot_the_remaining_target(target, received, wave_size):
    """The wave sizing rule used by the Task Manager, in isolation.

    A wave never requests more than the task's remaining assignment budget,
    and total assignments across waves can therefore never exceed the target
    (each wave buys at most what is still missing).
    """
    remaining = max(target - received, 1)
    wave = min(wave_size, remaining)
    assert 1 <= wave <= wave_size
    if received < target:
        assert received + wave <= target
