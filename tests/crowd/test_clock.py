"""Unit tests for the discrete-event simulation clock."""

import pytest

from repro.crowd import SimulationClock
from repro.errors import CrowdError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        clock = SimulationClock()
        fired = []
        clock.schedule_at(10, lambda: fired.append("b"))
        clock.schedule_at(5, lambda: fired.append("a"))
        clock.schedule_at(20, lambda: fired.append("c"))
        clock.advance_to(15)
        assert fired == ["a", "b"]
        assert clock.now == 15

    def test_same_time_events_fire_fifo(self):
        clock = SimulationClock()
        fired = []
        for label in "abc":
            clock.schedule_at(5, lambda label=label: fired.append(label))
        clock.advance_to(5)
        assert fired == ["a", "b", "c"]

    def test_schedule_in_past_rejected(self):
        clock = SimulationClock(start=100)
        with pytest.raises(CrowdError):
            clock.schedule_at(50, lambda: None)
        with pytest.raises(CrowdError):
            clock.schedule_in(-1, lambda: None)

    def test_rewind_rejected(self):
        clock = SimulationClock(start=10)
        with pytest.raises(CrowdError):
            clock.advance_to(5)

    def test_cancelled_events_do_not_fire(self):
        clock = SimulationClock()
        fired = []
        event = clock.schedule_in(5, lambda: fired.append("x"))
        event.cancel()
        clock.advance_by(10)
        assert fired == []
        assert clock.pending_events == 0

    def test_callbacks_can_schedule_more_events(self):
        clock = SimulationClock()
        fired = []

        def chain():
            fired.append(clock.now)
            if len(fired) < 3:
                clock.schedule_in(10, chain)

        clock.schedule_in(10, chain)
        clock.run_until_idle()
        assert fired == [10, 20, 30]

    def test_run_next_and_next_event_time(self):
        clock = SimulationClock()
        assert clock.next_event_time() is None
        assert clock.run_next() is False
        clock.schedule_at(3, lambda: None)
        assert clock.next_event_time() == 3
        assert clock.run_next() is True
        assert clock.now == 3

    def test_run_until_idle_guard_against_infinite_chains(self):
        clock = SimulationClock()

        def forever():
            clock.schedule_in(1, forever)

        clock.schedule_in(1, forever)
        with pytest.raises(CrowdError):
            clock.run_until_idle(max_events=100)

    def test_events_fired_counter(self):
        clock = SimulationClock()
        clock.schedule_in(1, lambda: None)
        clock.schedule_in(2, lambda: None)
        clock.run_until_idle()
        assert clock.events_fired == 2


class TestHeapCompaction:
    """Pin the lazy heap-compaction triggers (fraction + absolute floor)."""

    def test_no_compaction_below_minimum(self):
        clock = SimulationClock()
        events = [clock.schedule_in(i + 1, lambda: None) for i in range(10)]
        for event in events[:8]:
            event.cancel()
        # 8 of 10 cancelled exceeds the half-fraction, but not the minimum.
        assert len(clock._events) == 10
        assert clock.pending_events == 2

    def test_compaction_when_cancellations_dominate(self):
        clock = SimulationClock()
        events = [clock.schedule_in(i + 1, lambda: None) for i in range(40)]
        for event in events[:20]:
            event.cancel()
        # 20 of 40 is not *more* than half; one more tips it over.
        assert len(clock._events) == 40
        events[20].cancel()
        assert len(clock._events) == 19
        assert clock.pending_events == 19
        clock.run_until_idle()
        assert clock.events_fired == 19

    def test_compaction_at_absolute_floor_with_large_live_heap(self):
        # A long-lived engine: a big live heap and a minority of cancels.
        clock = SimulationClock()
        floor = SimulationClock.COMPACT_MAX_CANCELLED
        live = [clock.schedule_in(i + 1, lambda: None) for i in range(3 * floor)]
        doomed = live[:floor]
        for event in doomed[:-1]:
            event.cancel()
        # Still a minority of the heap, below the absolute floor: all retained.
        assert len(clock._events) == 3 * floor
        doomed[-1].cancel()
        # Hitting the floor compacts even though cancelled < half the heap.
        assert len(clock._events) == 2 * floor
        assert clock.pending_events == 2 * floor

    def test_cancelled_event_never_fires_after_compaction(self):
        clock = SimulationClock()
        fired = []
        keep = clock.schedule_in(5, lambda: fired.append("keep"))
        events = [clock.schedule_in(1, lambda: fired.append("dead")) for _ in range(30)]
        for event in events:
            event.cancel()
        clock.run_until_idle()
        assert fired == ["keep"]
        assert keep.cancelled is False
