"""Query 2 from the paper: joining two image tables with a crowd predicate.

Compares the three join interfaces the demo lets the audience explore
(Section 4.1 / Figure 3): naive one-pair-per-HIT, pair batching, and the
two-column drag-and-drop interface, plus a machine pre-filter that shrinks
the cross product before any money is spent.

Run with::

    python examples/celebrity_join.py
"""

from repro import QueryConfig, QurkEngine
from repro.workloads import CelebrityWorkload

QUERY_2 = (
    "SELECT celebrities.name, spottedstars.id "
    "FROM celebrities, spottedstars "
    "WHERE samePerson(celebrities.image, spottedstars.image)"
)


def run_variant(label, *, interface, pairs_per_hit=1, use_prefilter=False):
    """Run Query 2 with one join configuration and report cost/accuracy."""
    workload = CelebrityWorkload(n_celebrities=12, n_spotted=12, seed=17)
    engine = QurkEngine(seed=17, default_query_config=QueryConfig(adaptive=False))
    workload.install(engine.database)
    engine.register_oracle("samePerson", workload.oracle())

    spec = workload.sameperson_spec(
        interface="columns" if interface == "columns" else "pairs",
        assignments=3,
        batch_size=pairs_per_hit,
    )
    engine.define_task(
        spec,
        left_payload=workload.left_payload,
        right_payload=workload.right_payload,
        prefilter=workload.feature_prefilter(0.55) if use_prefilter else None,
    )
    handle = engine.query(QUERY_2)
    rows = handle.wait()
    score = workload.score_results(rows)
    print(
        f"{label:34s} HITs={handle.stats.hits_posted:4d}  cost=${handle.total_cost:6.2f}  "
        f"precision={score['precision']:.2f}  recall={score['recall']:.2f}  "
        f"latency={handle.stats.elapsed/60:5.1f} min"
    )


def main() -> None:
    print(f"cross product size: {12 * 12} pairs\n")
    run_variant("naive: 1 pair per HIT", interface="pairs")
    run_variant("naive batching: 10 pairs per HIT", interface="pairs", pairs_per_hit=10)
    run_variant("two-column interface (Figure 3)", interface="columns")
    run_variant(
        "two-column + feature pre-filter", interface="columns", use_prefilter=True
    )


if __name__ == "__main__":
    main()
