"""Quickstart: Query 1 from the paper — crowd-powered schema extension.

Runs ``findCEO`` over a companies table on the simulated crowd, first with a
TASK definition written in the paper's TASK language, then shows that
re-running the query is free thanks to the Task Cache.

Run with::

    python examples/quickstart.py
"""

from repro import QurkEngine
from repro.workloads import CompaniesWorkload

FINDCEO_TASK = """
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
    TaskType: Question
    Text: "Find the CEO and the CEO's phone number for the company %s", companyName
    Response: Form(("CEO", String), ("Phone", String))
    Price: 0.02
    Assignments: 3
"""

QUERY_1 = (
    "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
    "FROM companies"
)


def main() -> None:
    # 1. Build a synthetic workload: a companies table plus the ground truth
    #    directory that simulated workers will consult when answering HITs.
    workload = CompaniesWorkload(n_companies=15, seed=42)

    # 2. Stand up a Qurk engine (storage + optimizer + executor + task manager
    #    + a simulated MTurk marketplace with 150 workers).
    engine = QurkEngine(seed=42)
    workload.install(engine.database)
    engine.register_oracle("findCEO", workload.oracle())

    # 3. Register the crowd UDF using the paper's TASK definition language.
    engine.define_task(FINDCEO_TASK)

    # 4. Run Query 1.  The engine posts one Question HIT per company, waits
    #    (in simulated time) for three workers each, and majority-votes the
    #    answers field by field.
    handle = engine.query(QUERY_1)
    rows = handle.wait()

    print(f"Query {handle.query_id} finished with {len(rows)} rows:")
    for row in rows[:5]:
        print(f"  {row['companyName']:28s} CEO={row['findCEO.CEO']:20s} Phone={row['findCEO.Phone']}")
    print("  ...")
    accuracy = workload.score_results(rows, company_column="companyName", ceo_column="findCEO.CEO")
    print(f"CEO accuracy vs ground truth: {accuracy:.0%}")
    print(f"crowd cost: ${handle.total_cost:.2f} across {handle.stats.hits_posted} HITs")
    print(f"simulated completion time: {handle.stats.elapsed/60:.1f} minutes")

    # 5. Run it again: every findCEO call hits the Task Cache, so the second
    #    execution costs nothing ("We cache a given result to be used in
    #    several places (even possibly in different queries)").
    second = engine.query("SELECT companyName, findCEO(companyName).CEO FROM companies")
    second.wait()
    print(
        f"re-run cost: ${second.total_cost:.2f} "
        f"({second.stats.cache_hits} cache hits, "
        f"${second.stats.dollars_saved_cache:.2f} saved)"
    )


if __name__ == "__main__":
    main()
