"""The demo experience: the Query Status Dashboard and the Task Completion
Interface (Sections 4.1 and 4.2 of the paper).

Starts the paper's two demo queries, periodically renders the dashboard while
they run (budget, spend, estimates, cache/classifier savings, per-operator
progress), and has an "audience member" complete one HIT by hand through the
Task Completion Interface.

Run with::

    python examples/dashboard_demo.py
"""

from repro import QurkEngine
from repro.dashboard import QueryDashboard
from repro.ui import TaskCompletionInterface
from repro.workloads import CelebrityWorkload, CompaniesWorkload

QUERY_1 = (
    "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
    "FROM companies BUDGET 3.00"
)
QUERY_2 = (
    "SELECT celebrities.name, spottedstars.id "
    "FROM celebrities, spottedstars "
    "WHERE samePerson(celebrities.image, spottedstars.image) BUDGET 2.00"
)


def main() -> None:
    companies = CompaniesWorkload(n_companies=20, seed=3)
    celebrities = CelebrityWorkload(n_celebrities=10, n_spotted=10, seed=3)

    engine = QurkEngine(seed=3)
    companies.install(engine.database)
    celebrities.install(engine.database)
    engine.register_oracle("findCEO", companies.oracle())
    engine.register_oracle("samePerson", celebrities.oracle())
    engine.define_task(companies.findceo_spec())
    engine.define_task(
        celebrities.sameperson_spec(),
        left_payload=celebrities.left_payload,
        right_payload=celebrities.right_payload,
    )

    query1 = engine.query(QUERY_1)
    query2 = engine.query(QUERY_2)
    dashboard = QueryDashboard(engine)

    # --- an audience member completes one findCEO HIT by hand -------------
    while not engine.platform.open_hits():
        query1.step()
    interface = TaskCompletionInterface(engine.platform, participant_id="audience-member-1")
    hit = interface.open_hits()[0]
    print("An audience member opens the Task Completion Interface and sees:\n")
    print(interface.describe_hit(hit.hit_id))
    directory = companies.directory()
    answers = {
        item.item_id: {
            "CEO": directory[item.payload["companyName"]].ceo,
            "Phone": directory[item.payload["companyName"]].phone,
        }
        for item in hit.content.items
    }
    interface.submit_answers(hit.hit_id, answers)
    print("\n...they submit their answers, and the query advances.\n")

    # --- watch both queries on the dashboard while they run ----------------
    checkpoints = [0.25, 0.5, 0.75]
    for fraction in checkpoints:
        target_time = engine.clock.now + 600 * fraction
        query1.run_until(target_time)
        query2.run_until(target_time)
        print(f"--- dashboard at simulated t={engine.clock.now:,.0f}s ---")
        print(dashboard.render(query1.query_id))
        print()
        print(dashboard.render(query2.query_id))
        print()

    rows1 = query1.wait()
    rows2 = query2.wait()
    print("=== final dashboard ===")
    print(dashboard.render_all())
    print()
    print(f"Query 1 produced {len(rows1)} rows for ${query1.total_cost:.2f}")
    print(f"Query 2 produced {len(rows2)} rows for ${query2.total_cost:.2f}")
    print(f"Total simulated wall-clock: {engine.clock.now/3600:.1f} hours")


if __name__ == "__main__":
    main()
