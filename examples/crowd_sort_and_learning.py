"""Crowd sort strategies and the Task Model (classifier replacing humans).

Part 1 orders a products table by crowd-judged size using the two sort
implementations (pairwise comparisons vs per-item ratings) and reports the
cost/quality trade-off.

Part 2 runs a crowd filter over a large product catalog with the learned Task
Model enabled: after enough crowd-labelled examples the logistic-regression
model starts answering confidently-classified items itself, and the dashboard
metric "classifier savings" grows.

Run with::

    python examples/crowd_sort_and_learning.py
"""

from repro import QueryConfig, QurkEngine
from repro.workloads import ProductsWorkload


def crowd_sort_comparison() -> None:
    print("=== Part 1: crowd ORDER BY — comparisons vs ratings ===")
    for label, spec_builder, batch in (
        ("pairwise comparisons", "size_compare_spec", 5),
        ("1-7 ratings", "size_rating_spec", 5),
    ):
        workload = ProductsWorkload(n_products=25, seed=29)
        engine = QurkEngine(seed=29, default_query_config=QueryConfig(adaptive=False))
        workload.install(engine.database)
        oracle = workload.oracle()
        engine.register_oracle("biggerItem", oracle)
        engine.register_oracle("rateSize", oracle)
        spec = getattr(workload, spec_builder)(assignments=3, batch_size=batch)
        engine.define_task(spec, payload=lambda row: {"name": row["name"]})
        handle = engine.query(f"SELECT name FROM products ORDER BY {spec.name}(name)")
        rows = handle.wait()
        observed = [row["name"] for row in rows]
        rho = workload.rank_correlation(workload.true_size_order(), observed)
        print(
            f"  {label:24s} HITs={handle.stats.hits_posted:4d}  cost=${handle.total_cost:6.2f}  "
            f"rank correlation={rho:+.3f}"
        )
    print()


def task_model_learning() -> None:
    print("=== Part 2: the Task Model learns to replace the crowd ===")
    workload = ProductsWorkload(n_products=120, seed=31, feature_noise=0.05)
    # Cache off so the second pass genuinely re-asks every question; only the
    # learned classifier can make it cheaper.  Adaptive redundancy is off so
    # the cost difference between the passes is attributable to the model.
    engine = QurkEngine(
        seed=31,
        enable_task_model=True,
        enable_cache=False,
        default_query_config=QueryConfig(adaptive=False),
    )
    workload.install(engine.database)
    engine.register_oracle("isTargetColor", workload.oracle())
    entry = engine.define_task(
        workload.color_filter_spec(assignments=3, batch_size=5), learnable=True
    )
    # Swap in a more aggressive learner than the default (faster SGD, lower
    # confidence bar) so the demo converges within one catalog pass.
    from repro.core.tasks.task_model import LearnedTaskModel

    model = LearnedTaskModel(entry.spec, learning_rate=0.5, confidence_threshold=0.6)
    engine.task_models.register("isTargetColor", model)

    training = engine.query("SELECT name FROM products WHERE isTargetColor(name)")
    training.wait()
    print(
        f"  pass 1 (crowd labels train the model): cost=${training.total_cost:.2f}, "
        f"model trusted={model.is_trusted}, holdout accuracy={model.stats.holdout_accuracy:.0%}"
    )

    second = engine.query("SELECT name FROM products WHERE isTargetColor(name)")
    rows = second.wait()
    quality = workload.filter_accuracy(rows, name_column="name")
    print(
        f"  pass 2 (classifier answers confident items): cost=${second.total_cost:.2f}, "
        f"model answered {second.stats.model_answers}/{second.stats.tasks_completed} tasks"
    )
    print(f"  pass 2 precision={quality['precision']:.2f}, recall={quality['recall']:.2f}")
    print(f"  dollars saved by the classifier so far: ${model.stats.dollars_saved:.2f}")


def main() -> None:
    crowd_sort_comparison()
    task_model_learning()


if __name__ == "__main__":
    main()
